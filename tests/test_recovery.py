"""Snapshot/restore and crash recovery: the bit-identity guarantees.

The central claim of the durability subsystem: for *any* crash point —
journal append, journal commit, or an arbitrary backend op mid-epoch —
recovery from the snapshot plus the committed journal suffix, followed
by re-submitting the trace from ``ops_committed`` on the original
window grid, reproduces the uninterrupted run **bit for bit**: layout
snapshots, lookup results, per-shard and cluster ledgers, shard sizes,
memory peaks.  ``run_crash_matrix`` asserts all of it per crash point;
this file drives the matrix across policy × backend and pins the
snapshot/restore and replay primitives individually.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffered import BufferedHashTable
from repro.em import PAPER_POLICY, STRICT_POLICY, make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.service import (
    DictionaryService,
    EpochJournal,
    recover,
    restore_service,
    run_crash_matrix,
    snapshot_service,
)
from repro.tables.chaining import ChainedHashTable
from repro.workloads.generators import UniformKeys
from repro.workloads.trace import BulkMixedWorkload

MIX = (0.45, 0.30, 0.15, 0.10)


def _buffered(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _chained(ctx):
    return ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _make_service(backend="mapping", policy=None, shards=3, factory=_buffered):
    ctx = make_context(b=16, m=128, u=10**12, backend=backend, policy=policy)
    return DictionaryService(
        ctx, factory, shards=shards, executor="serial", epoch_ops=256
    )


def _trace(n, chunk=200, seed=9):
    wl = BulkMixedWorkload(UniformKeys(10**12, seed=3), mix=MIX, seed=seed, chunk=chunk)
    return wl.take_arrays(n)


def _ledger(svc):
    s = svc.io_snapshot()
    return (s.reads, s.writes, s.combined, s.allocations)


class TestSnapshotRestore:
    @pytest.mark.parametrize("backend", ["mapping", "arena", "durable-arena"])
    def test_restored_service_continues_bit_identically(self, tmp_path, backend):
        kinds, keys = _trace(1600)
        svc = _make_service(backend)
        svc.run(kinds[:800], keys[:800])
        snapshot_service(svc, tmp_path / "s.pkl")
        twin = restore_service(tmp_path / "s.pkl")
        svc.run(kinds[800:], keys[800:])
        twin.run(kinds[800:], keys[800:])
        assert _ledger(svc) == _ledger(twin)
        assert svc.shard_sizes() == twin.shard_sizes()
        assert svc.memory_high_water() == twin.memory_high_water()
        a, b = svc.layout_snapshot(), twin.layout_snapshot()
        assert dict(a.blocks) == dict(b.blocks)
        assert a.memory_items == b.memory_items

    def test_snapshot_is_atomic_replace(self, tmp_path):
        svc = _make_service()
        path = tmp_path / "s.pkl"
        snapshot_service(svc, path)
        first = path.read_bytes()
        kinds, keys = _trace(400)
        svc.run(kinds, keys)
        snapshot_service(svc, path)
        assert path.read_bytes() != first
        assert not list(tmp_path.glob("*.tmp*"))  # no droppings

    def test_restore_rejects_unknown_version(self, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        path.write_bytes(pickle.dumps({"version": 999}))
        with pytest.raises(ValueError, match="snapshot version"):
            restore_service(path)

    def test_restore_can_override_executor(self, tmp_path):
        svc = _make_service()
        snapshot_service(svc, tmp_path / "s.pkl")
        twin = restore_service(tmp_path / "s.pkl", executor="threads")
        assert twin.executor.name == "threads"


class TestJournalReplay:
    def test_full_trace_replay_matches(self, tmp_path):
        kinds, keys = _trace(2000)
        svc = _make_service()
        snapshot_service(svc, tmp_path / "s.pkl")
        svc.journal = EpochJournal(tmp_path / "j.bin", fsync=False)
        svc.run(kinds, keys)
        svc.journal.close()
        rep = recover(tmp_path / "s.pkl", tmp_path / "j.bin")
        assert rep.replayed_epochs == svc.epochs_run
        assert rep.replayed_ops == 2000
        assert rep.discarded_ops == 0
        assert rep.committed_through == 2000
        assert _ledger(rep.service) == _ledger(svc)
        assert rep.service.shard_sizes() == svc.shard_sizes()

    def test_mid_trace_snapshot_skips_prefix(self, tmp_path):
        kinds, keys = _trace(1200)
        svc = _make_service()
        svc.journal = EpochJournal(tmp_path / "j.bin", fsync=False)
        svc.run(kinds[:600], keys[:600])
        snapshot_service(svc, tmp_path / "s.pkl")
        svc.run(kinds[600:], keys[600:])
        svc.journal.close()
        rep = recover(tmp_path / "s.pkl", tmp_path / "j.bin")
        # Only the epochs after the checkpoint replay.
        assert 0 < rep.replayed_ops <= 600
        assert _ledger(rep.service) == _ledger(svc)

    def test_recovery_without_journal(self, tmp_path):
        kinds, keys = _trace(400)
        svc = _make_service()
        svc.run(kinds, keys)
        snapshot_service(svc, tmp_path / "s.pkl")
        rep = recover(tmp_path / "s.pkl")
        assert rep.replayed_epochs == 0
        assert _ledger(rep.service) == _ledger(svc)

    def test_resumed_journal_continues_cleanly(self, tmp_path):
        kinds, keys = _trace(800, chunk=100)
        svc = _make_service()
        snapshot_service(svc, tmp_path / "s.pkl")
        svc.journal = EpochJournal(tmp_path / "j.bin", fsync=False)
        svc.run(kinds[:400], keys[:400])
        svc.journal.close()
        rep = recover(tmp_path / "s.pkl", tmp_path / "j.bin")
        rep.service.run(kinds[400:], keys[400:])  # re-journaled via resume
        rep.service.journal.close()
        scan = EpochJournal.scan(tmp_path / "j.bin")
        assert scan.uncommitted_ops == 0
        assert [r.epoch for r in scan.committed] == list(range(rep.service.epochs_run))
        assert scan.committed[-1].stop == 800


class TestChaosMatrix:
    """The acceptance matrix: every crash point, per policy × backend."""

    @pytest.mark.parametrize("policy", [PAPER_POLICY, STRICT_POLICY],
                             ids=["paper", "strict"])
    @pytest.mark.parametrize("backend", ["mapping", "durable-arena"])
    def test_every_crash_point_recovers_bit_identically(self, policy, backend):
        kinds, keys = _trace(1000, chunk=125)  # sub-window chunks: multi-epoch windows
        report = run_crash_matrix(
            lambda: _make_service(backend, policy=policy),
            kinds,
            keys,
            window=250,
            sample_ops=8,
            seed=11,
        )
        assert report.epochs >= 4
        # Every epoch boundary (append + commit) plus 8 intra-epoch ops.
        assert report.points == 2 * report.epochs + 8
        assert report.crashes == report.points  # every scheduled crash fired
        assert report.retries > 0  # transient faults occurred and healed
        replays = [o.replayed_epochs for o in report.outcomes]
        assert max(replays) > 0  # some legs actually replayed epochs

    def test_chained_table_service_also_recovers(self):
        kinds, keys = _trace(600, chunk=100)
        report = run_crash_matrix(
            lambda: _make_service("arena", shards=2, factory=_chained),
            kinds,
            keys,
            window=200,
            sample_ops=4,
            seed=5,
        )
        assert report.crashes == report.points

    def test_burst_beyond_budget_rejected(self):
        kinds, keys = _trace(100)
        with pytest.raises(ValueError, match="retry budget"):
            run_crash_matrix(
                lambda: _make_service(),
                kinds,
                keys,
                window=100,
                fault_burst=99,
            )
