"""Unit tests for the simulated Disk."""

import pytest

from repro.em import (
    Block,
    ConfigurationError,
    Disk,
    InvalidBlockError,
    IOStats,
    STRICT_POLICY,
)


@pytest.fixture
def disk():
    return Disk(8)


class TestAllocation:
    def test_allocate_returns_distinct_ids(self, disk):
        ids = disk.allocate_many(5)
        assert len(set(ids)) == 5

    def test_allocation_charges_no_io(self, disk):
        disk.allocate_many(10)
        assert disk.stats.total == 0

    def test_free_then_access_raises(self, disk):
        bid = disk.allocate()
        disk.free(bid)
        with pytest.raises(InvalidBlockError):
            disk.read(bid)

    def test_double_free_raises(self, disk):
        bid = disk.allocate()
        disk.free(bid)
        with pytest.raises(InvalidBlockError):
            disk.free(bid)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Disk(0)
        with pytest.raises(ConfigurationError):
            Disk(8, record_words=9)


class TestReadWrite:
    def test_write_then_read_roundtrip(self, disk):
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[1, 2, 3]))
        blk = disk.read(bid)
        assert blk.records() == [1, 2, 3]

    def test_each_access_charges_one_io(self, disk):
        disk.stats.policy = STRICT_POLICY
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[1]))
        disk.read(bid)
        assert disk.stats.total == 2

    def test_read_returns_copy_by_default(self, disk):
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[1]))
        blk = disk.read(bid)
        blk.append(2)
        assert disk.peek(bid).records() == [1]

    def test_write_stores_copy(self, disk):
        bid = disk.allocate()
        blk = Block(8, data=[1])
        disk.write(bid, blk)
        blk.append(2)
        assert disk.peek(bid).records() == [1]

    def test_write_wrong_capacity_rejected(self, disk):
        bid = disk.allocate()
        with pytest.raises(InvalidBlockError):
            disk.write(bid, Block(16))

    def test_read_unknown_block(self, disk):
        with pytest.raises(InvalidBlockError):
            disk.read(12345)

    def test_modify_context_manager_is_one_paper_io(self, disk):
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[1]))
        before = disk.stats.total
        with disk.modify(bid) as blk:
            blk.append(2)
        # Footnote 2: read + immediate write of the same block = 1 I/O.
        assert disk.stats.total - before == 1
        assert disk.peek(bid).records() == [1, 2]

    def test_first_write_recorded_as_allocation(self, disk):
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[1]))
        assert disk.stats.allocations == 1
        disk.write(bid, Block(8, data=[1, 2]))
        assert disk.stats.allocations == 1  # only the first write


class TestInstrumentation:
    def test_peek_charges_nothing(self, disk):
        bid = disk.allocate()
        disk.write(bid, Block(8, data=[1]))
        before = disk.stats.total
        disk.peek(bid)
        assert disk.stats.total == before

    def test_scan_charges_per_block(self, disk):
        ids = disk.allocate_many(3)
        for bid in ids:
            disk.write(bid, Block(8, data=[bid]))
        before = disk.stats.total
        blocks = disk.scan(ids)
        assert disk.stats.total - before == 3
        assert [b.records() for b in blocks] == [[i] for i in ids]

    def test_scan_visit_callback(self, disk):
        ids = disk.allocate_many(2)
        for bid in ids:
            disk.write(bid, Block(8, data=[bid * 10]))
        seen = []
        disk.scan(ids, visit=lambda bid, blk: seen.append((bid, blk.records())))
        assert seen == [(ids[0], [ids[0] * 10]), (ids[1], [ids[1] * 10])]

    def test_counters(self, disk):
        ids = disk.allocate_many(4)
        disk.write(ids[0], Block(8, data=[1, 2]))
        disk.write(ids[1], Block(8, data=[3]))
        assert disk.blocks_in_use() == 4
        assert disk.nonempty_blocks() == 2
        assert disk.words_stored() == 3
        assert ids[0] in disk
        assert 999 not in disk

    def test_store_ownership_transfer_charges_like_write(self):
        """store(bid, block) transfers the block without copying and
        charges exactly like write(bid, block)."""
        d1, d2 = Disk(8), Disk(8)
        b1, b2 = d1.allocate(), d2.allocate()
        blk = Block(8, data=[7, 8])
        d1.store(b1, blk)
        d2.write(b2, Block(8, data=[7, 8]))
        assert d1.peek(b1).records() == d2.peek(b2).records() == [7, 8]
        assert d1.stats.snapshot() == d2.stats.snapshot()
        # Transferred block IS the stored block (no copy)...
        assert d1.peek(b1, copy=False) is blk
        # ...and a wrong-capacity transfer is rejected like write.
        with pytest.raises(InvalidBlockError):
            d1.store(b1, Block(16))

    def test_shared_stats_object(self):
        stats = IOStats()
        d1 = Disk(8, stats=stats)
        d2 = Disk(8, stats=stats)
        b1 = d1.allocate()
        d1.write(b1, Block(8, data=[1]))
        b2 = d2.allocate()
        d2.write(b2, Block(8, data=[2]))
        assert stats.total == 2
