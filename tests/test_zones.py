"""Unit tests for the M/F/S zone decomposition (Section 2 abstraction)."""

import pytest

from repro.lowerbound.zones import (
    ZoneDecomposition,
    ZoneHistoryPoint,
    decompose,
    verify_query_claim,
)
from repro.tables.base import LayoutSnapshot


def snap(memory=(), blocks=None, address=None):
    blocks = blocks or {}
    addr = address if address is not None else (lambda k: None)
    return LayoutSnapshot(
        memory_items=frozenset(memory), blocks=blocks, address=addr
    )


class TestDecompose:
    def test_memory_zone(self):
        z = decompose(snap(memory={1, 2}))
        assert z.memory == {1, 2}
        assert not z.fast and not z.slow

    def test_fast_zone_requires_address_match(self):
        s = snap(blocks={0: (10,), 1: (20,)}, address=lambda k: 0)
        z = decompose(s)
        assert z.fast == {10}  # 10 is in block 0 = f(10)
        assert z.slow == {20}  # f(20)=0 but 20 lives in block 1

    def test_none_address_is_slow(self):
        s = snap(blocks={0: (10,)}, address=lambda k: None)
        z = decompose(s)
        assert z.slow == {10}

    def test_memory_copy_beats_disk_copy(self):
        """An item in memory is in M even if a stale copy sits on disk."""
        s = snap(memory={10}, blocks={0: (10,)}, address=lambda k: None)
        z = decompose(s)
        assert z.memory == {10}
        assert 10 not in z.slow

    def test_duplicate_disk_copies_any_match_counts(self):
        """x is fast if *some* copy lives in B_{f(x)}."""
        s = snap(blocks={0: (10,), 1: (10,)}, address=lambda k: 1)
        z = decompose(s)
        assert z.fast == {10}

    def test_k_counts_distinct_items(self):
        s = snap(memory={1}, blocks={0: (2, 3), 1: (3,)}, address=lambda k: 0)
        z = decompose(s)
        assert z.k == 3


class TestQueryCostBound:
    def test_empty_structure(self):
        z = decompose(snap())
        assert z.query_cost_lower_bound() == 0.0

    def test_all_fast_is_one(self):
        s = snap(blocks={0: (1, 2, 3)}, address=lambda k: 0)
        assert decompose(s).query_cost_lower_bound() == 1.0

    def test_weights_zero_one_two(self):
        # 1 memory (0 I/O), 1 fast (1 I/O), 1 slow (2 I/Os) -> avg 1.
        s = snap(
            memory={1},
            blocks={0: (2,), 1: (3,)},
            address=lambda k: 0,
        )
        z = decompose(s)
        assert z.query_cost_lower_bound() == pytest.approx((0 + 1 + 2) / 3)

    def test_inequality_1(self):
        z = ZoneDecomposition(
            memory=frozenset(range(5)),
            fast=frozenset(range(10, 100)),
            slow=frozenset(range(200, 210)),
        )
        # |S| = 10, k = 105.
        assert z.satisfies_inequality_1(m=8, delta=0.05)  # 10 <= 8 + 5.25
        assert not z.satisfies_inequality_1(m=1, delta=0.05)
        assert z.slow_budget(m=8, delta=0.05) == pytest.approx(8 + 0.05 * 105 - 10)


class TestHistory:
    def test_history_point_from_zones(self):
        z = decompose(snap(memory={1}, blocks={0: (2,)}, address=lambda k: 0))
        pt = ZoneHistoryPoint.from_zones(inserted=2, z=z)
        assert pt.memory_size == 1
        assert pt.fast_size == 1
        assert pt.query_lb == pytest.approx(0.5)

    def test_verify_query_claim_flags_violations(self):
        ok = ZoneHistoryPoint(10, memory_size=5, fast_size=5, slow_size=0, query_lb=1.0)
        bad = ZoneHistoryPoint(
            100, memory_size=0, fast_size=10, slow_size=90, query_lb=1.9
        )
        violations = verify_query_claim([ok, bad], m=4, delta=0.01)
        assert violations == [bad]
