"""Unit tests for the table/figure renderers."""

from repro.analysis.tradeoff_curves import format_rows, render_figure1, tradeoff_table
from repro.core.tradeoff import TradeoffCurves, figure1_curves


class TestFormatRows:
    def test_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_alignment_and_headers(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "long-name", "value": 22.25}]
        out = format_rows(rows)
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert len(lines) == 4  # header + separator + 2 rows
        # All lines equally wide (aligned columns).
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = format_rows(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_float_formatting(self):
        out = format_rows([{"x": 0.123456789}], float_fmt="{:.2f}")
        assert "0.12" in out


class TestFigureRendering:
    def test_render_contains_envelopes_and_boundary(self):
        curves = figure1_curves(128, 10**6, 4096)
        art = render_figure1(curves)
        assert "L" in art and "U" in art
        assert "|" in art  # the c = 1 boundary
        assert "c=1 boundary" in art

    def test_render_includes_measured_points(self):
        curves = figure1_curves(128, 10**6, 4096)
        curves.add_measured(0.5, 1.01, 0.3, "buffered")
        art = render_figure1(curves)
        assert "*" in art

    def test_render_empty(self):
        curves = TradeoffCurves(b=8, n=1, m=1)
        assert render_figure1(curves) == "(no points)"

    def test_tradeoff_table_rows_sorted_by_c(self):
        curves = figure1_curves(64, 10**5, 512)
        table = tradeoff_table(curves)
        assert "t_q" in table.splitlines()[0]
        assert len(table.splitlines()) > 10
