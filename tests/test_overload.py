"""Overload resilience: admission, shedding, deadlines, breakers.

Four contracts are pinned here:

* **bit-identity with controls disabled** — a transparent open-loop run
  (unbounded queue, no deadline, no breaker) produces bit-identical
  epochs, per-shard and cluster ledgers, layouts, lookup/delete results
  and memory peaks to a plain ``service.run`` of the same stream;
* **no silent loss** — every offered op ends in exactly one accounted
  outcome: ``executed + shed + rejected + deadline_exceeded == n``,
  under every policy and under breaker quarantine with fault bursts;
* **program order** — the executed subset is an ascending subsequence
  of the offered stream (shedding deletes ops, never reorders them);
  under quarantine the guarantee holds per shard (= per key);
* **deterministic degradation** — seeded arrivals + virtual service
  model + clock-driven breakers make every overload run, including the
  chaos run, exactly reproducible.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.em import PAPER_POLICY, make_context
from repro.em.errors import ConfigurationError, ServiceOverloadError
from repro.hashing.family import MULTIPLY_SHIFT
from repro.service import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    EXECUTED,
    EXPIRED,
    PENDING,
    REJECTED,
    SHED,
    AdmissionController,
    AdmissionQueue,
    DictionaryService,
    OpenLoopClient,
    PoissonArrivals,
    RetryPolicy,
    ShardBreakerBoard,
    run_overload_chaos,
)
from repro.tables import ChainedHashTable
from repro.workloads.trace import OP_DELETE, OP_INSERT, OP_LOOKUP

U = 10**12


def _chained(ctx):
    return ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _make_service(shards=3, epoch_ops=256):
    ctx = make_context(b=16, m=4096, u=U, policy=PAPER_POLICY)
    return DictionaryService(ctx, _chained, shards=shards, epoch_ops=epoch_ops)


def _mixed_stream(n, seed=0):
    rnd = random.Random(seed)
    live: list[int] = []
    kinds, keys = [], []
    for _ in range(n):
        r = rnd.random()
        if not live or r < 0.45:
            k = rnd.randrange(U)
            kinds.append(OP_INSERT)
            live.append(k)
        elif r < 0.80:
            k = rnd.choice(live) if rnd.random() < 0.7 else rnd.randrange(U)
            kinds.append(OP_LOOKUP)
        else:
            k = rnd.choice(live) if rnd.random() < 0.8 else rnd.randrange(U)
            kinds.append(OP_DELETE)
        keys.append(k)
    return np.array(kinds, dtype=np.uint8), np.array(keys, dtype=np.uint64)


def _ledgers(svc):
    lt = lambda s: (s.reads, s.writes, s.combined, s.allocations)
    return lt(svc.io_snapshot()), [lt(s) for s in svc.shard_io_snapshots()]


# -- admission queue ---------------------------------------------------------


def test_admission_queue_pops_in_program_order():
    q = AdmissionQueue()
    stream = [(0, OP_INSERT), (1, OP_LOOKUP), (2, OP_DELETE), (3, OP_LOOKUP),
              (4, OP_INSERT)]
    for idx, kind in stream:
        q.push(idx, kind)
    assert len(q) == 5
    assert q.peek_next() == (0, OP_INSERT)
    popped = [q.pop_next() for _ in range(5)]
    assert popped == stream, "kind bucketing must not reorder the stream"
    assert q.pop_next() is None and q.peek_next() is None and len(q) == 0


def test_admission_queue_evicts_oldest_of_kind():
    q = AdmissionQueue()
    for idx, kind in [(0, OP_LOOKUP), (1, OP_INSERT), (2, OP_LOOKUP)]:
        q.push(idx, kind)
    assert q.oldest_of(OP_LOOKUP) == 0
    assert q.evict_oldest(OP_LOOKUP) == 0
    assert q.evict_oldest(OP_DELETE) is None
    assert len(q) == 2
    assert [q.pop_next() for _ in range(2)] == [(1, OP_INSERT), (2, OP_LOOKUP)]


# -- admission controller ----------------------------------------------------


def test_controller_validation():
    with pytest.raises(ConfigurationError, match="queue_depth"):
        AdmissionController(queue_depth=0)
    with pytest.raises(ConfigurationError, match="unknown shed policy"):
        AdmissionController(policy="panic")
    with pytest.raises(ConfigurationError, match="permutation"):
        AdmissionController(shed_order=(OP_LOOKUP, OP_LOOKUP, OP_DELETE))
    with pytest.raises(ConfigurationError, match="deadline_s"):
        AdmissionController(deadline_s=0.0)
    with pytest.raises(ConfigurationError, match="high_water"):
        AdmissionController(queue_depth=10, high_water=11)
    with pytest.raises(ConfigurationError, match="min_batch"):
        AdmissionController(min_batch=0)


def test_controller_transparency():
    assert AdmissionController().transparent
    assert not AdmissionController(queue_depth=8).transparent
    assert not AdmissionController(deadline_s=1.0).transparent


def test_shed_policy_prefers_lowest_priority_kind():
    ctrl = AdmissionController(queue_depth=2, policy="shed")
    q = AdmissionQueue()
    out = np.full(8, PENDING, dtype=np.uint8)
    ctrl.offer(q, 0, OP_LOOKUP, out)
    ctrl.offer(q, 1, OP_INSERT, out)
    # Queue full; an arriving delete evicts the oldest lookup.
    ctrl.offer(q, 2, OP_DELETE, out)
    assert out[0] == SHED and len(q) == 2
    # An arriving lookup is itself the most sheddable op in sight.
    ctrl.offer(q, 3, OP_LOOKUP, out)
    assert out[3] == SHED and len(q) == 2
    assert [q.pop_next() for _ in range(2)] == [(1, OP_INSERT), (2, OP_DELETE)]


def test_shed_order_is_configurable():
    ctrl = AdmissionController(
        queue_depth=1, policy="shed",
        shed_order=(OP_DELETE, OP_LOOKUP, OP_INSERT),
    )
    q = AdmissionQueue()
    out = np.full(4, PENDING, dtype=np.uint8)
    ctrl.offer(q, 0, OP_DELETE, out)
    ctrl.offer(q, 1, OP_INSERT, out)  # inserts outrank deletes here
    assert out[0] == SHED and q.peek_next() == (1, OP_INSERT)


def test_reject_policy_accounts_or_raises():
    out = np.full(4, PENDING, dtype=np.uint8)
    q = AdmissionQueue()
    ctrl = AdmissionController(queue_depth=1, policy="reject")
    ctrl.offer(q, 0, OP_INSERT, out)
    ctrl.offer(q, 1, OP_INSERT, out)
    assert out[1] == REJECTED and len(q) == 1
    strict = AdmissionController(queue_depth=1, policy="reject", strict=True)
    with pytest.raises(ServiceOverloadError, match="queue full"):
        strict.offer(q, 2, OP_INSERT, out)


def test_adapt_policy_shrinks_and_regrows_batches():
    ctrl = AdmissionController(
        queue_depth=1024, policy="adapt", high_water=512, min_batch=64
    )
    assert ctrl.batch_cap(600, 1024, 1024) == 512
    assert ctrl.batch_cap(600, 1024, 512) == 256
    assert ctrl.batch_cap(600, 1024, 70) == 64  # floor
    assert ctrl.batch_cap(300, 1024, 64) == 64  # hysteresis band holds
    assert ctrl.batch_cap(100, 1024, 64) == 128  # drained: grow back
    assert ctrl.batch_cap(100, 1024, 1024) == 1024  # capped at epoch_ops
    # Non-adapt policies never touch the cap.
    assert AdmissionController(queue_depth=8).batch_cap(100, 1024, 512) == 1024


def test_deadline_expiry_predicate():
    ctrl = AdmissionController(deadline_s=0.5, queue_depth=8)
    assert not ctrl.expired(1.0, 1.5)
    assert ctrl.expired(1.0, 1.5000001)
    assert not AdmissionController(queue_depth=8).expired(0.0, 1e9)


# -- bit-identity with controls disabled -------------------------------------


@pytest.mark.parametrize("shards,epoch_ops", [(1, 128), (3, 256), (4, 64)])
def test_transparent_open_loop_is_bit_identical_to_run(shards, epoch_ops):
    kinds, keys = _mixed_stream(2500, seed=11)
    ref = _make_service(shards, epoch_ops)
    golden = ref.run(kinds, keys)

    svc = _make_service(shards, epoch_ops)
    client = OpenLoopClient(
        svc, PoissonArrivals(8000.0, seed=5), service_rate=30000.0
    )
    # Results round-trip through the service identically...
    found = np.zeros(len(kinds), dtype=bool)
    removed = np.zeros(len(kinds), dtype=bool)
    report = client.drive(kinds, keys)
    assert report.executed == len(kinds)
    assert report.shed == report.rejected == report.deadline_exceeded == 0
    # ...and every accounting observable matches the plain run.
    assert report.epochs == len(golden.epochs)
    assert _ledgers(ref) == _ledgers(svc)
    assert ref.shard_sizes() == svc.shard_sizes()
    assert ref.memory_high_water() == svc.memory_high_water()
    assert ref.epochs_run == svc.epochs_run
    probe = np.unique(keys)
    ones = np.ones(len(probe), dtype=np.uint8)
    assert np.array_equal(
        ref.run(ones, probe).lookup_found, svc.run(ones, probe).lookup_found
    )


def test_transparent_client_executes_in_program_order():
    kinds, keys = _mixed_stream(1200, seed=2)
    svc = _make_service()
    client = OpenLoopClient(svc, PoissonArrivals(5000.0, seed=1),
                            service_rate=20000.0)
    client.drive(kinds, keys)
    assert client.executed_order == list(range(len(kinds)))


# -- overload accounting and ordering ----------------------------------------


@pytest.mark.parametrize("policy", ["reject", "shed", "adapt"])
def test_overload_conserves_every_op(policy):
    kinds, keys = _mixed_stream(3000, seed=5)
    svc = _make_service()
    client = OpenLoopClient(
        svc,
        PoissonArrivals(60000.0, seed=3),
        controller=AdmissionController(queue_depth=128, policy=policy),
        service_rate=10000.0,
    )
    rep = client.drive(kinds, keys)
    out = client.outcomes
    assert int(np.count_nonzero(out == PENDING)) == 0
    assert rep.executed + rep.shed + rep.rejected + rep.deadline_exceeded == len(kinds)
    assert rep.executed == int(np.count_nonzero(out == EXECUTED))
    assert rep.shed == int(np.count_nonzero(out == SHED))
    assert rep.rejected == int(np.count_nonzero(out == REJECTED))
    # Saturated at 6x capacity with a tiny queue: something must give.
    assert rep.executed < len(kinds)
    assert rep.goodput_kops < rep.kops


@pytest.mark.parametrize("policy", ["reject", "shed", "adapt"])
def test_executed_subset_is_in_program_order(policy):
    kinds, keys = _mixed_stream(2000, seed=9)
    svc = _make_service()
    client = OpenLoopClient(
        svc,
        PoissonArrivals(50000.0, seed=2),
        controller=AdmissionController(queue_depth=96, policy=policy),
        service_rate=8000.0,
    )
    client.drive(kinds, keys)
    order = np.asarray(client.executed_order, dtype=np.int64)
    assert len(order) > 0
    assert bool(np.all(np.diff(order) > 0)), (
        "shedding must only delete ops, never reorder them"
    )
    assert bool(np.all(client.outcomes[order] == EXECUTED))


def test_shedding_prefers_lookups_over_writes():
    kinds, keys = _mixed_stream(3000, seed=5)
    svc = _make_service()
    client = OpenLoopClient(
        svc,
        PoissonArrivals(80000.0, seed=3),
        controller=AdmissionController(queue_depth=64, policy="shed"),
        service_rate=8000.0,
    )
    rep = client.drive(kinds, keys)
    shed_kinds = kinds[client.outcomes == SHED]
    assert rep.shed > 0
    lookups_shed = int(np.count_nonzero(shed_kinds == OP_LOOKUP))
    deletes_shed = int(np.count_nonzero(shed_kinds == OP_DELETE))
    assert lookups_shed > deletes_shed
    # Deletes (last in the default shed order) survive at a higher rate
    # than lookups (first).
    lookup_rate = lookups_shed / max(1, int((kinds == OP_LOOKUP).sum()))
    delete_rate = deletes_shed / max(1, int((kinds == OP_DELETE).sum()))
    assert lookup_rate > delete_rate


def test_deadlines_expire_queued_work():
    kinds, keys = _mixed_stream(2000, seed=7)
    svc = _make_service()
    client = OpenLoopClient(
        svc,
        PoissonArrivals(50000.0, seed=4),
        controller=AdmissionController(queue_depth=4096, deadline_s=0.002),
        service_rate=6000.0,
    )
    rep = client.drive(kinds, keys)
    assert rep.deadline_exceeded > 0
    assert rep.executed + rep.deadline_exceeded + rep.shed + rep.rejected == len(kinds)
    # Executed ops met their deadline-at-dispatch: queueing delay bounded.
    lax = _make_service()
    client2 = OpenLoopClient(
        lax,
        PoissonArrivals(50000.0, seed=4),
        controller=AdmissionController(queue_depth=4096, deadline_s=1e9),
        service_rate=6000.0,
    )
    rep2 = client2.drive(kinds, keys)
    assert rep2.deadline_exceeded == 0 and rep2.executed == len(kinds)


def test_open_loop_runs_are_reproducible():
    kinds, keys = _mixed_stream(1500, seed=13)

    def once():
        svc = _make_service()
        client = OpenLoopClient(
            svc,
            PoissonArrivals(40000.0, seed=6),
            controller=AdmissionController(queue_depth=100, policy="shed"),
            service_rate=9000.0,
        )
        rep = client.drive(kinds, keys)
        return client.outcomes.copy(), client.executed_order, rep.row()

    a, b = once(), once()
    assert np.array_equal(a[0], b[0])
    assert a[1] == b[1]
    assert a[2] == b[2]


def test_strict_reject_surfaces_service_overload_error():
    kinds, keys = _mixed_stream(800, seed=3)
    svc = _make_service()
    client = OpenLoopClient(
        svc,
        PoissonArrivals(100000.0, seed=2),
        controller=AdmissionController(queue_depth=16, strict=True),
        service_rate=4000.0,
    )
    with pytest.raises(ServiceOverloadError, match="rejected"):
        client.drive(kinds, keys)


def test_client_parameter_validation():
    svc = _make_service(shards=1)
    with pytest.raises(ValueError, match="service_rate"):
        OpenLoopClient(svc, PoissonArrivals(10.0), service_rate=0.0)
    with pytest.raises(ValueError, match="batch_ops"):
        OpenLoopClient(svc, PoissonArrivals(10.0), batch_ops=0)
    client = OpenLoopClient(svc, PoissonArrivals(10.0))
    empty = client.drive(np.zeros(0, np.uint8), np.zeros(0, np.uint64))
    assert empty.ops == 0 and empty.executed == 0 and empty.seconds == 0.0


# -- circuit breakers --------------------------------------------------------


def test_breaker_transitions_are_deterministic():
    board = ShardBreakerBoard(2, threshold=2, cooldown=10.0)
    clock = 0.0
    assert board.state(0) == BREAKER_CLOSED and not board.any_open()
    board.record_failure(0, clock)
    assert board.state(0) == BREAKER_CLOSED  # below threshold
    board.record_failure(0, clock)
    assert board.state(0) == BREAKER_OPEN and board.trips == 1
    assert board.any_open()
    # Quarantined until the cooldown elapses on the caller's clock.
    assert board.blocked(0, 5.0)
    assert board.reopen_at(0) == 10.0
    assert not board.blocked(0, 10.0)
    assert board.state(0) == BREAKER_HALF_OPEN
    # Probe fails: straight back to quarantine, cooldown restarted.
    board.record_failure(0, 10.0)
    assert board.state(0) == BREAKER_OPEN and board.trips == 2
    assert board.reopen_at(0) == 20.0
    assert not board.blocked(0, 20.0)  # half-open again
    board.record_success(0, 20.0)
    assert board.state(0) == BREAKER_CLOSED and board.recoveries == 1
    # Failure counting restarts from zero after recovery.
    board.record_failure(0, 21.0)
    assert board.state(0) == BREAKER_CLOSED
    # The other shard never moved.
    assert board.state(1) == BREAKER_CLOSED and not board.blocked(1, 0.0)


def test_breaker_success_resets_failure_streak():
    board = ShardBreakerBoard(1, threshold=3, cooldown=1.0)
    board.record_failure(0, 0.0)
    board.record_failure(0, 0.0)
    board.record_success(0, 0.0)  # streak broken while closed
    board.record_failure(0, 0.0)
    board.record_failure(0, 0.0)
    assert board.state(0) == BREAKER_CLOSED
    board.record_failure(0, 0.0)
    assert board.state(0) == BREAKER_OPEN


def test_breaker_validation():
    with pytest.raises(ValueError, match="shard count"):
        ShardBreakerBoard(0)
    with pytest.raises(ValueError, match="threshold"):
        ShardBreakerBoard(2, threshold=0)
    with pytest.raises(ValueError, match="cooldown"):
        ShardBreakerBoard(2, cooldown=0.0)


# -- overload chaos ----------------------------------------------------------


def test_overload_chaos_accounts_every_op():
    kinds, keys = _mixed_stream(2500, seed=21)
    report = run_overload_chaos(
        _make_service,
        kinds,
        keys,
        service_rate=5000.0,
        rate_factor=2.0,
        queue_depth=256,
        policy="shed",
        seed=1,
    )
    # The harness itself asserts conservation and per-shard program
    # order; pin the headline numbers here.
    assert report.ops == len(kinds)
    assert report.accounted == report.ops
    assert report.executed > 0 and report.shed > 0
    assert report.breaker_trips >= 1, "chaos run never tripped a breaker"
    assert report.faults_injected > 0 and report.retries > 0


def test_overload_chaos_is_reproducible():
    kinds, keys = _mixed_stream(1500, seed=22)
    kw = dict(service_rate=4000.0, rate_factor=1.8, queue_depth=200,
              policy="shed", seed=9)
    a = run_overload_chaos(_make_service, kinds, keys, **kw)
    b = run_overload_chaos(_make_service, kinds, keys, **kw)
    assert a == b


def test_overload_chaos_rejects_healable_bursts():
    kinds, keys = _mixed_stream(200, seed=1)
    with pytest.raises(ValueError, match="retry budget"):
        run_overload_chaos(
            _make_service, kinds, keys, service_rate=1000.0,
            fault_burst=2, retry_policy=RetryPolicy(max_retries=4),
        )
