"""Unit tests for the round adversary driver and Theorem 1 bound forms."""

import math

import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.core.config import LowerBoundParams
from repro.lowerbound.adversary import KeyStream, run_adversary
from repro.lowerbound.bounds import (
    amortized_bound,
    chernoff_bad_function_tail,
    family_union_bound,
    minimum_n,
    round_bound,
    theorem1_statement,
)
from repro.tables.chaining import ChainedHashTable


class TestKeyStream:
    def test_distinct_keys(self):
        ks = KeyStream(2**40, seed=1)
        batch = ks.take(1000)
        assert len(set(batch)) == 1000

    def test_distinct_across_batches(self):
        ks = KeyStream(2**40, seed=1)
        a = ks.take(500)
        b = ks.take(500)
        assert not set(a) & set(b)

    def test_deterministic(self):
        assert KeyStream(2**40, 7).take(100) == KeyStream(2**40, 7).take(100)


class TestRoundBounds:
    def test_case1_round_bound_positive_in_regime(self):
        """Case 1's constants only bite for large b (φ = b^{-(c-1)/4}
        must be ≪ 1/2); at b = 2^16, c = 2 we have φ = 1/16."""
        b, m = 2**16, 64
        n = minimum_n(b, m, 2.0)
        p = LowerBoundParams.case1(b, n, 2.0)
        rb = round_bound(p, n, m, b)
        assert rb.route == "lemma3"
        assert rb.expected_round_cost > 0.5 * p.s
        assert rb.failure_probability < 1.0

    def test_case1_round_bound_saturates_for_small_b(self):
        """For small b the case-1 guarantee is vacuous, not crashing:
        φ > 1/2 pushes the failure probability to 1."""
        b, m = 64, 64
        n = minimum_n(b, m, 1.5)
        p = LowerBoundParams.case1(b, n, 1.5)
        rb = round_bound(p, n, m, b)
        assert rb.failure_probability == 1.0

    def test_case3_round_bound_uses_lemma4(self):
        b, m = 64, 64
        n = minimum_n(b, m, 0.5)
        p = LowerBoundParams.case3(b, n, 0.5)
        rb = round_bound(p, n, m, b)
        assert rb.route == "lemma4"
        assert rb.expected_round_cost > 0

    def test_amortized_bound_case1_near_one(self):
        """Case 1 amortized lower bound → 1 − O(1/b^{(c−1)/4}) as b grows."""
        m, c = 64, 2.0
        small_b, big_b = 2**12, 2**20
        vals = {}
        for b in (small_b, big_b):
            n = minimum_n(b, m, c)
            p = LowerBoundParams.case1(b, n, c)
            vals[b] = amortized_bound(p, n, m, b)
        assert vals[big_b] > 0.5
        assert vals[big_b] > vals[small_b]  # tightens toward 1 with b

    def test_amortized_bound_case3_matches_b_power(self):
        """Case 3 amortized bound scales like b^{c−1}."""
        m, c = 64, 0.5
        vals = {}
        for b in (64, 256):
            n = minimum_n(b, m, c)
            p = LowerBoundParams.case3(b, n, c)
            vals[b] = amortized_bound(p, n, m, b)
        # b^{c-1} = b^{-1/2}: quadrupling b should halve the bound (±50%).
        ratio = vals[64] / vals[256]
        assert 1.3 < ratio < 3.0

    def test_statements_render(self):
        assert "c>1" in theorem1_statement(64, 1.5)
        assert "Ω(1)" in theorem1_statement(64, 1.0)
        assert "c<1" in theorem1_statement(64, 0.5)

    def test_union_bound_log_space(self):
        # Family of 2^{64·61} functions needs a tail below 2^{-3904}.
        tail = chernoff_bad_function_tail(phi=0.1, n=10**7)
        assert family_union_bound(64, 2**61 - 1, tail) == 0.0
        assert family_union_bound(64, 2**61 - 1, 0.5) == 1.0


class TestRunAdversary:
    @pytest.fixture
    def report(self):
        """A small end-to-end adversary run against blocked chaining."""
        # The proof's regime needs far more blocks than the round size s,
        # else Z is capped at the bucket count instead of ≈ s.
        ctx = make_context(b=16, m=8192, u=2**40)
        h = MULTIPLY_SHIFT.sample(ctx.u, seed=2)
        table = ChainedHashTable(ctx, h, buckets=4096, max_load=None)
        n = 2000
        params = LowerBoundParams(delta=1 / 16, phi=0.1, rho=0.01, s=200, case=2)
        return run_adversary(table, ctx, params, n, seed=3)

    def test_round_structure(self, report):
        free = int(0.1 * 2000)
        assert report.free_items == free
        assert len(report.rounds) == (2000 - free) // 200
        assert all(r.items == 200 for r in report.rounds)

    def test_costs_accumulated(self, report):
        assert report.total_ios == sum(r.actual_ios for r in report.rounds)
        assert report.measured_tu > 0

    def test_certificate_never_exceeds_actual(self, report):
        """Z (distinct fast-zone addresses) is a *lower* bound on the
        round's I/Os — the heart of the proof — so it must not exceed
        what the table actually spent."""
        for r in report.rounds:
            assert r.certified_lb <= r.actual_ios

    def test_standard_table_certified_near_one_per_item(self, report):
        """For the 1-I/O-query chaining table the certificate should
        capture most of the insertion cost."""
        assert report.certified_tu > 0.5

    def test_zone_sizes_recorded(self, report):
        for r in report.rounds:
            assert r.fast_zone + r.slow_zone + r.memory_zone >= r.items
            assert r.query_lb >= 0

    def test_max_rounds_truncation(self):
        ctx = make_context(b=16, m=128, u=2**40)
        h = MULTIPLY_SHIFT.sample(ctx.u, seed=2)
        table = ChainedHashTable(ctx, h, buckets=64, max_load=None)
        params = LowerBoundParams(delta=1 / 16, phi=0.1, rho=0.01, s=100, case=2)
        rep = run_adversary(table, ctx, params, 2000, seed=3, max_rounds=3)
        assert len(rep.rounds) == 3
