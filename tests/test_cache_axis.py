"""Caching as a policy axis: the CachedDisk exactness contract.

The ``cache_blocks`` axis must buy throughput without buying *drift*:

* **bit-identity of results** — a cached run returns the same lookup
  and delete outcomes and converges to the same disk layout as the
  uncached run of the identical stream (the cache is invisible to
  semantics);
* **the relabelling contract** — every read the uncached configuration
  charges is either a charged **miss** or an uncharged **hit**:
  ``hits + misses == uncached charged reads`` and
  ``misses == cached charged reads``, access for access, while
  ``writes + combined`` totals agree (a hit before a store turns one
  combined RMW into one plain write — same total, relabelled);
* **axis independence** — the contract holds across storage backends
  (mapping / arena / durable-arena produce bit-identical cached runs),
  both I/O policies, shard counts, and through the service layer's
  per-epoch cache-ledger merge;
* **negative caching** — LSM Bloom rejections count as
  ``negative_hits``, which charge nothing in either configuration and
  sit outside the hits+misses contract.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines.btree import BTree
from repro.baselines.buffer_tree import BufferTree
from repro.baselines.lsm import LSMTree
from repro.core.buffered import BufferedHashTable
from repro.core.logmethod import LogMethodHashTable
from repro.em import (
    Block,
    CachedDisk,
    ConfigurationError,
    Disk,
    IOStats,
    PAPER_POLICY,
    STRICT_POLICY,
    make_context,
)
from repro.em.storage import EMContext, ModelParams
from repro.hashing.family import MULTIPLY_SHIFT
from repro.tables import (
    ChainedHashTable,
    ExtendibleHashTable,
    LinearHashingTable,
    ShardedDictionary,
    make_sharded,
)

N_KEYS = 1200
N_PROBE = 400
CACHE_BLOCKS = 48


def _chained(ctx):
    return ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _logmethod(ctx):
    return LogMethodHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _buffered(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _lsm(ctx):
    return LSMTree(ctx, bloom_bits_per_key=4.0)


def _lsm_nobloom(ctx):
    return LSMTree(ctx)


def _buffer_tree(ctx):
    return BufferTree(ctx)


def _btree(ctx):
    return BTree(ctx)


def _extendible(ctx):
    return ExtendibleHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _linear_hashing(ctx):
    return LinearHashingTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


TABLES = {
    "buffered": _buffered,
    "logmethod": _logmethod,
    "chained": _chained,
    "lsm": _lsm,
    "lsm_nobloom": _lsm_nobloom,
    "buffer_tree": _buffer_tree,
    "btree": _btree,
    "extendible": _extendible,
    "linear_hashing": _linear_hashing,
    "sharded_buffered": make_sharded(_buffered, 2),
}

POLICIES = {"paper": PAPER_POLICY, "strict": STRICT_POLICY}


def _keys(seed: int) -> tuple[list[int], list[int]]:
    rnd = random.Random(seed)
    keys = rnd.sample(range(10**12), N_KEYS)
    probe = keys[::3] + rnd.sample(range(10**12), N_PROBE)
    return keys, probe


def _drive(factory, *, cache_blocks: int, policy=PAPER_POLICY,
           backend: str = "mapping", seed: int = 11, b: int = 32,
           m: int = 512):
    """One interleaved mixed run; returns results, layout, and ledgers."""
    ctx = make_context(b=b, m=m, policy=policy, backend=backend,
                       cache_blocks=cache_blocks)
    table = factory(ctx)
    keys, probe = _keys(seed)
    results = []
    bounds = [0, len(keys) // 3, 2 * len(keys) // 3, len(keys)]
    for lo, hi in zip(bounds, bounds[1:]):
        table.insert_batch(keys[lo:hi])
        results.append(table.lookup_batch(probe).tolist())
        results.append(
            table.delete_batch(keys[lo:hi][1::9] + [10**13 + lo]).tolist()
        )
        # Scalar singles between the batches: the per-key hot paths must
        # satisfy the same contract as the batch engine.
        results.append([table.lookup(k) for k in probe[:40]])
        results.append([table.delete(k) for k in keys[lo:hi][2::97]])
    table.check_invariants()
    snap = table.layout_snapshot()
    # Sharded tables keep per-shard pools; their aggregate is the run's
    # cache ledger.  Plain tables report the context pool.
    cache = (table.cache_stats() if hasattr(table, "cache_stats")
             else ctx.cache_stats())
    return {
        "results": results,
        "blocks": snap.blocks,
        "memory_items": snap.memory_items,
        "size": len(table),
        "io": ctx.stats.snapshot(),
        "cache": cache,
    }


def _assert_contract(uncached, cached, label: str) -> None:
    assert uncached["results"] == cached["results"], f"{label}: results diverge"
    assert uncached["blocks"] == cached["blocks"], f"{label}: layouts diverge"
    assert uncached["memory_items"] == cached["memory_items"], label
    assert uncached["size"] == cached["size"], label
    u, c = uncached["io"], cached["io"]
    cs = cached["cache"]
    assert cs is not None and uncached["cache"] is None
    assert cs.hits + cs.misses == u.reads, (
        f"{label}: hits({cs.hits}) + misses({cs.misses}) != "
        f"uncached reads({u.reads})"
    )
    assert c.reads == cs.misses, f"{label}: cached reads != misses"
    assert c.writes + c.combined == u.writes + u.combined, (
        f"{label}: write totals diverge (relabelling must conserve them)"
    )
    assert c.allocations == u.allocations, label


# -- the contract, across tables / policies / backends -----------------------


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", sorted(TABLES))
def test_cached_run_matches_uncached(name, policy_name):
    policy = POLICIES[policy_name]
    uncached = _drive(TABLES[name], cache_blocks=0, policy=policy)
    cached = _drive(TABLES[name], cache_blocks=CACHE_BLOCKS, policy=policy)
    _assert_contract(uncached, cached, f"{name}/{policy_name}")
    assert cached["cache"].hits > 0, "workload never hit the cache"


@pytest.mark.parametrize("name", ["buffered", "lsm", "chained"])
def test_tiny_cache_still_exact(name):
    """A 2-frame pool thrashes constantly; the contract must survive
    every eviction path."""
    uncached = _drive(TABLES[name], cache_blocks=0)
    cached = _drive(TABLES[name], cache_blocks=2)
    _assert_contract(uncached, cached, f"{name}/tiny")


@pytest.mark.parametrize("backend", ["mapping", "arena", "durable-arena"])
def test_cache_backend_bit_identity(backend):
    """Cached runs are backend-invariant: same results, layouts and
    hit/miss totals on every block store."""
    base = _drive(_buffered, cache_blocks=CACHE_BLOCKS, backend="mapping")
    other = _drive(_buffered, cache_blocks=CACHE_BLOCKS, backend=backend)
    assert base["results"] == other["results"]
    assert base["blocks"] == other["blocks"]
    assert base["io"] == other["io"]
    bc, oc = base["cache"], other["cache"]
    assert (bc.hits, bc.misses, bc.negative_hits) == (
        oc.hits, oc.misses, oc.negative_hits
    )


@pytest.mark.parametrize("backend", ["arena", "durable-arena"])
@pytest.mark.parametrize("name", ["buffered", "lsm", "logmethod"])
def test_cache_contract_on_other_backends(name, backend):
    uncached = _drive(TABLES[name], cache_blocks=0, backend=backend)
    cached = _drive(TABLES[name], cache_blocks=CACHE_BLOCKS, backend=backend)
    _assert_contract(uncached, cached, f"{name}/{backend}")


def test_bloom_negative_hits_counted():
    """Bloom rejections are negative-cache hits: free in both configs,
    counted separately, and the hits+misses contract still closes."""
    uncached = _drive(_lsm, cache_blocks=0)
    cached = _drive(_lsm, cache_blocks=CACHE_BLOCKS)
    _assert_contract(uncached, cached, "lsm/bloom")
    assert cached["cache"].negative_hits > 0
    nobloom = _drive(_lsm_nobloom, cache_blocks=CACHE_BLOCKS)
    assert nobloom["cache"].negative_hits == 0


# -- context plumbing ---------------------------------------------------------


class TestContextAxis:
    def test_uncached_context_has_plain_disk(self):
        ctx = make_context(b=32, m=512)
        assert ctx.disk.cache is None
        assert ctx.cache_stats() is None

    def test_cached_context_routes_through_pool(self):
        ctx = make_context(b=32, m=512, cache_blocks=8)
        assert isinstance(ctx.disk, CachedDisk)
        assert ctx.disk.cache.capacity_blocks == 8
        assert ctx.cache_stats() is ctx.disk.cache.stats

    def test_cache_charges_dedicated_budget_words(self):
        plain = make_context(b=32, m=512)
        cached = make_context(b=32, m=512, cache_blocks=8)
        assert cached.memory.m == plain.memory.m + 8 * 32
        # The structures' own budget view is unchanged: same m.
        assert cached.m == plain.m
        assert cached.memory.charge_of("buffer-pool") == 8 * 32

    def test_negative_cache_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            make_context(b=32, m=512, cache_blocks=-1)

    def test_explicit_disk_with_cache_rejected(self):
        params = ModelParams(b=32, m=512, u=2**40)
        with pytest.raises(ConfigurationError):
            EMContext(params=params, disk=Disk(32), cache_blocks=4)


# -- CachedDisk unit behaviour ------------------------------------------------


class TestCachedDisk:
    def _disk(self, policy=STRICT_POLICY, cache_blocks=4):
        return CachedDisk(4, cache_blocks=cache_blocks,
                          stats=IOStats(policy=policy))

    def _fill(self, disk, n):
        ids = disk.allocate_many(n)
        for bid in ids:
            disk.write(bid, Block(4, data=[bid]))
        disk.stats.reset()
        return ids

    def test_read_miss_then_hit(self):
        disk = self._disk()
        (bid,) = self._fill(disk, 1)
        disk.read(bid)
        before = disk.stats.reads
        blk = disk.read(bid)
        assert disk.stats.reads == before  # hit: uncharged
        assert disk.cache.stats == disk.cache.stats.__class__(hits=1, misses=1)
        assert blk.records() == [bid]

    def test_write_invalidates_frame(self):
        disk = self._disk()
        (bid,) = self._fill(disk, 1)
        disk.read(bid)
        disk.write(bid, Block(4, data=[99]))
        assert not disk.cache.is_resident(bid)
        assert disk.read(bid).records() == [99]  # fresh miss, new contents
        assert disk.cache.stats.misses == 2

    def test_read_returns_private_copy(self):
        disk = self._disk()
        (bid,) = self._fill(disk, 1)
        blk = disk.read(bid)
        blk.append(4242)
        assert disk.read(bid).records() == [bid]

    def test_hit_load_store_relabels_combined_as_write(self):
        """PAPER policy: the uncached run's load charges a read that the
        following store combines with.  A cache hit-load avoids the read
        and does not reset the pending-RMW block, so the store is a
        plain write — same write total, relabelled."""
        cached = CachedDisk(4, cache_blocks=4,
                            stats=IOStats(policy=PAPER_POLICY))
        cb, cb2 = self._fill(cached, 2)
        plain = Disk(4, stats=IOStats(policy=PAPER_POLICY))
        pb, pb2 = plain.allocate(), plain.allocate()
        for bid in (pb, pb2):
            plain.write(bid, Block(4, data=[bid]))
        plain.stats.reset()

        for disk, bid, other in ((cached, cb, cb2), (plain, pb, pb2)):
            disk.read(bid)
            disk.read(other)  # clears the pending RMW block for `bid`
            blk = disk.load(bid)
            blk.append(7)
            disk.store(bid)
        assert plain.stats.reads == 3 and plain.stats.combined == 1
        assert plain.stats.writes == 0
        # Cached: 2 miss reads, then a hit-load (uncharged) whose store
        # cannot combine — no physical read of `bid` preceded it.
        assert cached.stats.reads == 2 and cached.stats.combined == 0
        assert cached.stats.writes == 1
        assert cached.cache.stats.hits == 1
        assert (cached.stats.writes + cached.stats.combined
                == plain.stats.writes + plain.stats.combined)
        assert (cached.cache.stats.hits + cached.cache.stats.misses
                == plain.stats.reads)
        assert cached.read(cb).records() == plain.read(pb).records()

    def test_probe_record_set_membership(self):
        disk = self._disk()
        (bid,) = self._fill(disk, 1)
        assert disk.probe_record(bid, bid)  # miss: charges, installs
        assert disk.stats.reads == 1
        assert disk.probe_record(bid, bid)  # hit via the membership set
        assert not disk.probe_record(bid, 12345)  # resident: still free
        assert disk.stats.reads == 1
        assert disk.cache.stats.hits == 2

    def test_remove_record_hit_paths(self):
        disk = self._disk()
        (bid,) = self._fill(disk, 1)
        disk.read(bid)  # install
        assert not disk.remove_record(bid, 777)  # absent: free, no write
        assert (disk.stats.reads, disk.stats.writes) == (1, 0)
        assert disk.remove_record(bid, bid)  # present: drops frame, writes
        assert disk.stats.writes == 1 and disk.stats.reads == 1
        assert not disk.cache.is_resident(bid)
        assert disk.read(bid).records() == []

    def test_bulk_reads_never_install(self):
        """Scan resistance: one cold sweep must not flush the pool."""
        disk = self._disk(cache_blocks=2)
        ids = self._fill(disk, 6)
        disk.read(ids[0])  # hot frame
        out = disk.read_records(ids)
        assert sorted(out) == sorted(ids)
        assert disk.cache.resident() == [ids[0]]  # sweep installed nothing
        assert disk.cache.stats.hits == 1  # the hot frame served its block
        assert disk.cache.stats.misses == 6  # read miss + 5 sweep misses
        assert disk.stats.reads == 6

    def test_scan_counts_like_read_records(self):
        disk = self._disk(cache_blocks=2)
        ids = self._fill(disk, 4)
        disk.read(ids[1])
        blocks = disk.scan(ids)
        assert [b.records() for b in blocks] == [[i] for i in ids]
        assert disk.cache.stats.hits == 1
        assert disk.stats.reads == 4  # 1 install miss + 3 sweep misses


# -- shards and the service ledger -------------------------------------------


class TestShardedAndService:
    def test_sharded_cache_stats_aggregate(self):
        # Small per-shard memory so the workload actually reaches disk.
        ctx = make_context(b=32, m=128, cache_blocks=16, hard_memory=False)
        table = ShardedDictionary(ctx, _buffered, shards=4)
        keys, probe = _keys(seed=17)
        table.insert_batch(keys)
        table.lookup_batch(probe)
        table.delete_batch(keys[::5])
        table.lookup_batch(probe)
        agg = table.cache_stats()
        per_shard = [sub.cache_stats() for sub in table._contexts]
        assert agg.hits == sum(s.hits for s in per_shard) > 0
        assert agg.misses == sum(s.misses for s in per_shard) > 0

    def test_uncached_sharded_reports_none(self):
        ctx = make_context(b=32, m=512)
        table = ShardedDictionary(ctx, _buffered, shards=2)
        assert table.cache_stats() is None

    def test_service_merges_cache_ledger_at_epoch_close(self):
        from repro.service import ClosedLoopClient, DictionaryService
        from repro.workloads.generators import UniformKeys
        from repro.workloads.trace import BulkMixedWorkload

        wl = BulkMixedWorkload(
            UniformKeys(10**12, seed=5), mix=(0.3, 0.5, 0.1, 0.1), seed=6,
            chunk=512,
        )
        kinds, keys = wl.take_arrays(4000)

        def run(cache_blocks):
            # Small per-shard memory so epochs actually charge reads.
            ctx = make_context(b=32, m=128, cache_blocks=cache_blocks,
                               hard_memory=False)
            with DictionaryService(ctx, _buffered, shards=4,
                                   epoch_ops=512) as svc:
                rep = ClosedLoopClient(svc, window=1024).drive(kinds, keys)
                shard_caches = [sub.cache_stats() for sub in svc._contexts]
                return svc.io_snapshot(), svc.cache_snapshot(), rep, shard_caches

        u_io, u_cache, u_rep, _ = run(0)
        c_io, c_cache, c_rep, shard_caches = run(16)
        # Cluster ledger equals the sum of the per-shard pools...
        assert c_cache.hits == sum(s.hits for s in shard_caches) > 0
        assert c_cache.misses == sum(s.misses for s in shard_caches)
        # ...and satisfies the relabelling contract against the uncached
        # cluster, epoch merges included.
        assert u_cache.hits == u_cache.misses == 0
        assert c_cache.hits + c_cache.misses == u_io.reads
        assert c_io.reads == c_cache.misses
        assert c_io.writes + c_io.combined == u_io.writes + u_io.combined
        # The client report surfaces the delta: zero-filled uncached.
        assert u_rep.hit_rate == 0.0 and u_rep.negative_hits == 0
        assert c_rep.hit_rate == pytest.approx(c_cache.hit_rate)

    def test_executor_invariant_cache_ledger(self):
        from repro.service import DictionaryService
        from repro.workloads.generators import UniformKeys
        from repro.workloads.trace import BulkMixedWorkload

        wl = BulkMixedWorkload(
            UniformKeys(10**12, seed=9), mix=(0.4, 0.4, 0.1, 0.1), seed=10,
            chunk=512,
        )
        kinds, keys = wl.take_arrays(3000)
        totals = {}
        for executor in ("serial", "threads"):
            ctx = make_context(b=32, m=128, cache_blocks=16,
                               hard_memory=False)
            with DictionaryService(ctx, _buffered, shards=4,
                                   executor=executor, epoch_ops=512) as svc:
                svc.run(kinds, keys)
                totals[executor] = svc.cache_snapshot()
        assert totals["serial"] == totals["threads"]
