"""Unit tests for the Jensen–Pagh-style high-load table."""

import math

import pytest

from repro.em import make_context
from repro.hashing.family import MEMOISED_IDEAL, MULTIPLY_SHIFT
from repro.core.jensen_pagh import JensenPaghTable
from repro.workloads.drivers import measure_query_cost
from repro.workloads.generators import UniformKeys


def build(b=32, m=2048, seed=1, **kw):
    ctx = make_context(b=b, m=m)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=seed)
    return ctx, JensenPaghTable(ctx, h, **kw)


class TestBasics:
    def test_roundtrip(self, keys):
        _, t = build()
        t.insert_many(keys)
        assert len(t) == len(keys)
        assert all(t.lookup(k) for k in keys[::13])
        t.check_invariants()

    def test_absent(self, keys):
        _, t = build()
        t.insert_many(keys[:500])
        assert not any(t.lookup(k) for k in range(10**13, 10**13 + 40))

    def test_duplicates_noop(self):
        _, t = build()
        t.insert(7)
        t.insert(7)
        assert len(t) == 1

    def test_delete_primary_and_overflow(self, keys):
        _, t = build(b=8)
        subset = keys[:400]
        t.insert_many(subset)
        assert t.overflow_fraction() > 0  # some items overflowed at b=8
        for k in subset[::2]:
            assert t.delete(k)
        assert not t.delete(10**15)
        t.check_invariants()
        assert all(t.lookup(k) for k in subset[1::2])
        assert not any(t.lookup(k) for k in subset[::2])

    def test_alpha_validation(self):
        ctx = make_context(b=32, m=2048)
        h = MULTIPLY_SHIFT.sample(ctx.u, 1)
        with pytest.raises(ValueError):
            JensenPaghTable(ctx, h, alpha=1.5)


class TestCostProfile:
    def test_query_cost_one_plus_inverse_sqrt_b(self, keys):
        """[12]'s query bound: 1 + O(1/√b)."""
        ctx, t = build(b=64, m=4096, seed=3)
        t.insert_many(keys)
        tq = measure_query_cost(t, keys, sample_size=1500, seed=4).mean
        assert tq <= 1 + 6 / math.sqrt(64)

    def test_overflow_fraction_shrinks_with_b(self):
        """The Θ(1/√b) overflow tail."""
        fractions = {}
        for b in (16, 64, 256):
            ctx = make_context(b=b, m=8192)
            h = MEMOISED_IDEAL.sample(ctx.u, seed=5)
            t = JensenPaghTable(ctx, h)
            t.insert_many(UniformKeys(ctx.u, seed=6).take(4000))
            fractions[b] = t.overflow_fraction()
        assert fractions[64] < fractions[16]
        assert fractions[256] < fractions[64] + 0.01

    def test_insert_cost_near_one(self, keys):
        """Updates cost 1 + O(1/√b) — no buffering, by design."""
        ctx, t = build(b=64, m=4096, seed=7)
        before = ctx.stats.snapshot()
        t.insert_many(keys)
        tu = ctx.stats.delta_since(before).total / len(keys)
        assert 0.9 <= tu <= 1 + 8 / math.sqrt(64)

    def test_load_factor_high(self, keys):
        """The headline of [12]: load 1 − O(1/√b), far above chaining's."""
        _, t = build(b=64, m=4096, seed=8)
        t.insert_many(keys)
        # Footnote-1 load just after a doubling can sit near α/2; the
        # structure's *target* load is what the α parameter controls.
        assert t.alpha == pytest.approx(1 - 1 / math.sqrt(64))
        assert t.load_factor() > 0.35

    def test_memory_within_budget(self, keys):
        ctx, t = build()
        t.insert_many(keys)
        assert ctx.memory.within_budget()


class TestSnapshot:
    def test_snapshot_complete_and_mostly_fast(self, keys):
        from repro.lowerbound.zones import decompose

        _, t = build(b=64, m=4096, seed=9)
        t.insert_many(keys)
        snap = t.layout_snapshot()
        assert snap.item_count() == len(keys)
        z = decompose(snap)
        # Only the overflow tail is slow: |S|/k = O(1/√b).
        assert len(z.slow) / len(keys) < 4 / math.sqrt(64)
