"""Unit tests for linear probing, extendible hashing and linear hashing."""

import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.lowerbound.zones import decompose
from repro.tables.extendible import ExtendibleHashTable
from repro.tables.linear_hashing import LinearHashingTable
from repro.tables.linear_probing import LinearProbingHashTable

TABLES = [LinearProbingHashTable, ExtendibleHashTable, LinearHashingTable]


def build(cls, b=32, m=2048, seed=1):
    ctx = make_context(b=b, m=m)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=seed)
    return ctx, cls(ctx, h)


@pytest.mark.parametrize("cls", TABLES, ids=lambda c: c.__name__)
class TestCommonBehaviour:
    def test_insert_lookup_roundtrip(self, cls, keys):
        _, t = build(cls)
        t.insert_many(keys[:1000])
        assert len(t) == 1000
        assert all(t.lookup(k) for k in keys[:1000:7])
        t.check_invariants()

    def test_absent_keys_not_found(self, cls, keys):
        _, t = build(cls)
        t.insert_many(keys[:300])
        assert not any(t.lookup(k) for k in range(10**13, 10**13 + 50))

    def test_duplicate_insert_noop(self, cls):
        _, t = build(cls)
        t.insert(5)
        t.insert(5)
        assert len(t) == 1

    def test_delete_roundtrip(self, cls, keys):
        _, t = build(cls)
        subset = keys[:300]
        t.insert_many(subset)
        for k in subset[::2]:
            assert t.delete(k)
        assert len(t) == len(subset) - len(subset[::2])
        assert not any(t.lookup(k) for k in subset[::2])
        assert all(t.lookup(k) for k in subset[1::2])
        t.check_invariants()

    def test_delete_absent_returns_false(self, cls):
        _, t = build(cls)
        t.insert(1)
        assert not t.delete(99)

    def test_snapshot_complete_and_io_free(self, cls, keys):
        ctx, t = build(cls)
        t.insert_many(keys[:400])
        before = ctx.stats.total
        snap = t.layout_snapshot()
        assert ctx.stats.total == before
        assert snap.item_count() == 400

    def test_memory_within_budget(self, cls, keys):
        ctx, t = build(cls)
        t.insert_many(keys[:800])
        assert ctx.memory.within_budget()

    def test_query_lb_near_one(self, cls, keys):
        """All three classic tables keep nearly everything one I/O away."""
        _, t = build(cls, b=64)
        t.insert_many(keys[:1500])
        z = decompose(t.layout_snapshot())
        assert z.query_cost_lower_bound() <= 1.25


class TestLinearProbingSpecifics:
    def test_wraparound_probing(self, keys):
        ctx = make_context(b=8, m=2048)
        h = MULTIPLY_SHIFT.sample(ctx.u, seed=2)
        t = LinearProbingHashTable(ctx, h)
        t.insert_many(keys[:200])
        assert all(t.lookup(k) for k in keys[:200])
        t.check_invariants()

    def test_deletion_compaction_preserves_probes(self, keys):
        """After deletions, every survivor must still be reachable —
        the subtle linear-probing invariant."""
        ctx = make_context(b=8, m=2048)
        h = MULTIPLY_SHIFT.sample(ctx.u, seed=3)
        t = LinearProbingHashTable(ctx, h)
        subset = keys[:150]
        t.insert_many(subset)
        for k in subset[::3]:
            t.delete(k)
        t.check_invariants()
        survivors = [k for i, k in enumerate(subset) if i % 3 != 0]
        assert all(t.lookup(k) for k in survivors)

    def test_fill_fraction_bounded(self, keys):
        _, t = build(LinearProbingHashTable)
        t.insert_many(keys[:1000])
        assert 0 < t.fill_fraction() < 1


class TestExtendibleSpecifics:
    def test_directory_doubles_under_load(self, keys):
        ctx = make_context(b=8, m=4096)
        h = MULTIPLY_SHIFT.sample(ctx.u, seed=4)
        t = ExtendibleHashTable(ctx, h)
        t.insert_many(keys[:1000])
        # With b=8 and 1000 keys the directory must have grown well
        # beyond one bucket.
        assert len(t.distinct_buckets()) > 1000 / 8 / 4
        t.check_invariants()

    def test_load_factor_reasonable(self, keys):
        _, t = build(ExtendibleHashTable, b=16, m=4096)
        t.insert_many(keys[:1000])
        assert t.load_factor() > 0.3


class TestLinearHashingSpecifics:
    def test_incremental_splits(self, keys):
        ctx = make_context(b=8, m=4096)
        h = MULTIPLY_SHIFT.sample(ctx.u, seed=5)
        t = LinearHashingTable(ctx, h)
        t.insert_many(keys[:800])
        assert all(t.lookup(k) for k in keys[:800:11])
        t.check_invariants()

    def test_bucket_index_stable_for_stored_keys(self, keys):
        _, t = build(LinearHashingTable)
        t.insert_many(keys[:200])
        # bucket_index must route to where the key actually is: lookups
        # succeed for every stored key even mid-split-sequence.
        assert all(t.lookup(k) for k in keys[:200])

    def test_fill_fraction(self, keys):
        _, t = build(LinearHashingTable)
        t.insert_many(keys[:500])
        assert 0 < t.fill_fraction() <= 1
