"""Skew-adaptive sharding: slot directory, policy, migration, recovery.

The relabelling contract this file pins (ISSUE 9):

* rebalancing **disabled** — the slot directory's static map routes
  bit-identically to ``hash % shards``: same results, layouts, ledgers
  as the pre-directory router, for every generator kind and shard count;
* rebalancing **enabled** — results still equal program order and the
  cluster conserves its key set; only the *placement* (and therefore
  the per-shard I/O split) changes, with every migration charged and
  journaled write-ahead so a crash at any point mid-migration recovers
  to the uninterrupted run's exact state.

Plus the determinism satellites: scalar/vector router parity across
all five key-generator kinds, ``take`` vs ``stream`` chunk-invariance,
and the slot-directory snapshot/restore round trip.
"""

from __future__ import annotations

from itertools import islice

import numpy as np
import pytest

from repro.core.buffered import BufferedHashTable
from repro.core.config import KEY_DISTS, RebalanceConfig
from repro.em import make_context
from repro.em.errors import ConfigurationError
from repro.hashing.family import MULTIPLY_SHIFT
from repro.service import (
    ClosedLoopClient,
    DictionaryService,
    EpochJournal,
    Rebalancer,
    recover,
    restore_service,
    snapshot_service,
)
from repro.tables.rebalance import SlotMove, apply_moves, slot_keys
from repro.tables.sharded import (
    DEFAULT_SLOTS_PER_SHARD,
    _ROUTER_SEED,
    ShardedDictionary,
    SlotDirectory,
)
from repro.workloads.generators import ZipfKeys, make_generator
from repro.workloads.trace import BulkMixedWorkload

U = 10**12
MIX = (0.45, 0.30, 0.15, 0.10)
GENERATOR_KINDS = sorted(KEY_DISTS)


def _buffered(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _gen(kind, u=U, seed=5, shards=4):
    """A generator of ``kind``, supplying the kind-specific kwargs."""
    if kind == "zipf":
        return make_generator(kind, u, seed, theta=1.3)
    if kind == "adversarial":
        return make_generator(
            kind, u, seed,
            hash_fn=MULTIPLY_SHIFT.sample(u, seed=_ROUTER_SEED),
            buckets=shards, hot=1,
        )
    return make_generator(kind, u, seed)


def _skewed_trace(n, *, shards=4, chunk=256, seed=9):
    """A mixed trace whose every key attacks shard 0 of the static map."""
    wl = BulkMixedWorkload(
        _gen("adversarial", shards=shards), mix=MIX, seed=seed, chunk=chunk
    )
    return wl.take_arrays(n)


def _make_service(*, shards=4, rebalance=None, journal=None, epoch_ops=256):
    ctx = make_context(b=16, m=128, u=U, backend="mapping")
    return DictionaryService(
        ctx, _buffered, shards=shards, epoch_ops=epoch_ops,
        rebalance=rebalance, journal=journal,
    )


def _ledger(svc):
    s = svc.io_snapshot()
    return (s.reads, s.writes, s.combined, s.allocations)


def _state(svc):
    """The full bit-identity fingerprint used by the recovery tests."""
    snap = svc.layout_snapshot()
    return (
        _ledger(svc),
        svc.shard_sizes(),
        svc.memory_high_water(),
        dict(snap.blocks),
        snap.memory_items,
        tuple(svc.directory.slot_map.tolist()),
        (svc.migrated_slots, svc.keys_moved, svc.migrations_applied),
    )


# ---------------------------------------------------------------------------
# Slot directory


class TestSlotDirectory:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_static_map_is_bit_identical_to_modulo_routing(self, shards):
        router = MULTIPLY_SHIFT.sample(U, seed=_ROUTER_SEED)
        directory = SlotDirectory(router, shards)
        keys = np.random.default_rng(1).integers(0, U, size=4096, dtype=np.uint64)
        expected = (router.hash_array(keys) % np.uint64(shards)).astype(np.int64)
        assert directory.is_static()
        np.testing.assert_array_equal(directory.shards_of(keys), expected)
        for k in keys[:64]:
            assert directory.shard_of(int(k)) == int(router.hash(int(k))) % shards

    def test_default_fanout_and_divisibility(self):
        router = MULTIPLY_SHIFT.sample(U, seed=_ROUTER_SEED)
        directory = SlotDirectory(router, 4)
        assert directory.slots == 4 * DEFAULT_SLOTS_PER_SHARD
        with pytest.raises(ConfigurationError):
            SlotDirectory(router, 4, slots=10)  # not a multiple
        with pytest.raises(ConfigurationError):
            SlotDirectory(router, 4, slots=0)

    def test_assign_repoints_and_bumps_version(self):
        directory = SlotDirectory(MULTIPLY_SHIFT.sample(U, seed=1), 2)
        assert directory.version == 0
        directory.assign(0, 1)
        assert directory.version == 1
        assert not directory.is_static()
        assert 0 in directory.shard_slots(1)
        keys = np.random.default_rng(2).integers(0, U, size=2048, dtype=np.uint64)
        slots = directory.slots_of(keys)
        np.testing.assert_array_equal(
            directory.shards_of(keys)[slots == 0],
            np.ones(int((slots == 0).sum()), dtype=np.int64),
        )
        with pytest.raises(ConfigurationError):
            directory.assign(0, 2)  # shard out of range
        with pytest.raises(ConfigurationError):
            directory.assign(directory.slots, 0)  # slot out of range

    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_scalar_vector_parity_per_generator(self, kind, shards):
        """``shard_of(k) == _shard_idx([k])[0]`` for every kind × N."""
        ctx = make_context(b=16, m=128, u=U)
        table = ShardedDictionary(ctx, _buffered, shards=shards)
        keys = _gen(kind, shards=shards).take(256)
        for k in keys:
            vec = table._shard_idx(np.array([k], dtype=np.uint64))
            assert table.shard_of(k) == int(vec[0])


# ---------------------------------------------------------------------------
# Policy


def _fed(rebalancer, io_rows, ops_rows):
    for io, ops in zip(io_rows, ops_rows):
        rebalancer.observe(io, ops)
    return rebalancer


class TestRebalancerPolicy:
    def _directory(self, shards=4, slots=8):
        return SlotDirectory(MULTIPLY_SHIFT.sample(U, seed=3), shards, slots=slots)

    def test_no_observations_no_moves(self):
        assert Rebalancer().decide(0, self._directory()) == []
        assert Rebalancer().imbalance() == 0.0

    def test_balanced_load_is_left_alone(self):
        rb = _fed(Rebalancer(), [[100, 100, 100, 100]], [[50] * 8])
        assert rb.decide(1, self._directory()) == []
        assert rb.imbalance() == pytest.approx(1.0)

    def test_idle_cluster_below_min_io_is_left_alone(self):
        rb = _fed(Rebalancer(RebalanceConfig(min_io=64)),
                  [[40, 1, 1, 1]], [[40, 0, 0, 0, 0, 0, 0, 0]])
        assert rb.decide(1, self._directory()) == []

    def test_hot_shard_sheds_its_hottest_slots_to_coldest(self):
        # Shard 0 owns slots {0, 4}; slot 0 carries most of the load.
        rb = _fed(Rebalancer(),
                  [[900, 30, 30, 30]],
                  [[500, 10, 10, 10, 400, 10, 10, 10]])
        moves = rb.decide(1, self._directory())
        assert moves and moves[0].src == 0
        assert moves[0].slot == 0  # hottest first
        assert all(mv.dst != 0 for mv in moves)
        assert rb.imbalance() == pytest.approx(900 * 4 / 990)

    def test_single_hot_slot_does_not_ping_pong(self):
        # All the load is one slot: moving it just relabels the worst
        # shard, so the anti-ping-pong rule must refuse.
        rb = _fed(Rebalancer(),
                  [[960, 10, 10, 20]],
                  [[960, 0, 0, 0, 0, 0, 0, 0]])
        assert rb.decide(1, self._directory()) == []

    def test_cooldown_suppresses_consecutive_migrations(self):
        cfg = RebalanceConfig(cooldown=2)
        rb = _fed(Rebalancer(cfg),
                  [[900, 30, 30, 30]],
                  [[500, 10, 10, 10, 400, 10, 10, 10]])
        directory = self._directory()
        moves = rb.decide(1, directory)
        assert moves
        rb.note_moved(1, moves)
        assert rb.moves_applied == len(moves)
        for epoch in (2, 3):  # within cooldown
            assert rb.decide(epoch, directory) == []
        assert rb.decide(4, directory) != []

    def test_max_moves_caps_one_decision(self):
        cfg = RebalanceConfig(max_moves=1)
        directory = SlotDirectory(
            MULTIPLY_SHIFT.sample(U, seed=3), 4, slots=16
        )
        rb = _fed(Rebalancer(cfg),
                  [[900, 30, 30, 30]],
                  [[200, 0, 0, 0] * 4])
        assert len(rb.decide(1, directory)) == 1

    def test_worst_shard_keeps_at_least_one_slot(self):
        directory = SlotDirectory(MULTIPLY_SHIFT.sample(U, seed=3), 2, slots=4)
        rb = _fed(Rebalancer(RebalanceConfig(max_moves=8)),
                  [[990, 10]],
                  [[500, 5, 480, 5]])
        moves = rb.decide(1, directory)
        assert len(moves) <= 1  # shard 0 owns 2 slots; one must stay

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RebalanceConfig(threshold=1.0)
        with pytest.raises(ConfigurationError):
            RebalanceConfig(window=0)
        with pytest.raises(ConfigurationError):
            RebalanceConfig(max_moves=0)
        with pytest.raises(ConfigurationError):
            RebalanceConfig(cooldown=-1)
        with pytest.raises(ConfigurationError):
            RebalanceConfig(min_io=-1)


# ---------------------------------------------------------------------------
# Migration mechanism


class TestApplyMoves:
    def _cluster(self, shards=2, n=400):
        ctx = make_context(b=16, m=128, u=U)
        table = ShardedDictionary(ctx, _buffered, shards=shards)
        keys = _gen("uniform").take(n)
        table.insert_batch(keys)
        return table, keys

    def test_migration_conserves_keys_and_results(self):
        table, keys = self._cluster()
        before = len(table)
        # Move the three most populated shard-0 slots to shard 1.
        counts = [
            (len(slot_keys(table.shard_tables()[0], table.directory, int(s))), int(s))
            for s in table.directory.shard_slots(0)
        ]
        hot = [s for c, s in sorted(counts, reverse=True)[:3] if c > 0]
        assert hot, "fixture should populate shard-0 slots"
        report = table.migrate_slots([(s, 0, 1) for s in hot])
        assert report.slots_moved == len(hot)
        assert report.keys_moved > 0
        assert len(table) == before
        assert all(table.lookup_batch(np.array(keys, dtype=np.uint64)))
        moved = [k for k in keys if table.directory.slot_of(k) in set(hot)]
        assert moved and all(table.shard_of(k) == 1 for k in moved)

    def test_empty_slot_still_repoints(self):
        table, _ = self._cluster(n=4)
        empty = next(
            int(s) for s in table.directory.shard_slots(0)
            if len(slot_keys(table.shard_tables()[0], table.directory, int(s))) == 0
        )
        report = apply_moves(
            table.directory, table.shard_tables(), [SlotMove(empty, 0, 1)]
        )
        assert report.keys_moved == 0
        assert int(table.directory.slot_map[empty]) == 1

    def test_stale_source_is_rejected(self):
        table, _ = self._cluster()
        slot = int(table.directory.shard_slots(1)[0])
        with pytest.raises(ValueError, match="maps to shard"):
            apply_moves(table.directory, table.shard_tables(), [(slot, 0, 1)])

    def test_migration_io_is_charged(self):
        table, _ = self._cluster()
        marks = [sub.stats.total for sub in table._contexts]
        counts = [
            (len(slot_keys(table.shard_tables()[0], table.directory, int(s))), int(s))
            for s in table.directory.shard_slots(0)
        ]
        hot = max(counts)[1]
        table.migrate_slots([(hot, 0, 1)])
        after = [sub.stats.total for sub in table._contexts]
        assert sum(after) > sum(marks)  # drains and refills hit the ledgers


# ---------------------------------------------------------------------------
# Service contract: static vs adaptive


class TestServiceRelabelling:
    def test_disabled_rebalancing_is_bit_identical_to_static(self):
        kinds, keys = _skewed_trace(2000)
        static = _make_service()
        routed = _make_service(rebalance=None)
        a, b = static.run(kinds, keys), routed.run(kinds, keys)
        np.testing.assert_array_equal(a.lookup_found, b.lookup_found)
        np.testing.assert_array_equal(a.delete_removed, b.delete_removed)
        assert _ledger(static) == _ledger(routed)
        assert static.shard_sizes() == routed.shard_sizes()
        assert routed.directory.is_static()
        assert routed.migrated_slots == routed.migration_io == 0

    def test_adaptive_results_equal_program_order(self):
        kinds, keys = _skewed_trace(4000)
        static = _make_service()
        adaptive = _make_service(rebalance=True)
        a = static.run(kinds, keys)
        b = adaptive.run(kinds, keys)
        np.testing.assert_array_equal(a.lookup_found, b.lookup_found)
        np.testing.assert_array_equal(a.delete_removed, b.delete_removed)
        assert len(static) == len(adaptive)  # cluster size conserved
        assert adaptive.migrated_slots > 0
        assert adaptive.keys_moved > 0
        assert adaptive.migration_io > 0  # no free moves
        adaptive.check_invariants()

    def test_adaptive_cuts_the_worst_shard_share(self):
        kinds, keys = _skewed_trace(4000)
        static = _make_service()
        adaptive = _make_service(rebalance=True)
        static.run(kinds, keys)
        adaptive.run(kinds, keys)

        def ratio(svc):
            totals = np.array([s.total for s in svc.shard_io_snapshots()])
            return float(totals.max() * len(totals) / totals.sum())

        # Every key attacks shard 0, so the static ratio is the shard
        # count; migrations must spread the load measurably.
        assert ratio(static) == pytest.approx(4.0, rel=0.05)
        assert ratio(adaptive) < ratio(static)

    def test_client_report_surfaces_imbalance_and_migrations(self):
        kinds, keys = _skewed_trace(3000)
        adaptive = _make_service(rebalance=True)
        row = ClosedLoopClient(adaptive, window=512).drive(kinds, keys).row()
        assert row["migrated_slots"] == adaptive.migrated_slots > 0
        assert row["imbalance"] > 0.0
        static = _make_service()
        srow = ClosedLoopClient(static, window=512).drive(kinds, keys).row()
        assert srow["migrated_slots"] == 0
        assert srow["imbalance"] >= row["imbalance"]


# ---------------------------------------------------------------------------
# Durability: journal records + crash recovery mid-migration


class TestRebalanceJournal:
    def test_rebalance_record_round_trips(self, tmp_path):
        path = tmp_path / "j.bin"
        journal = EpochJournal(path, fsync=False)
        kinds = np.array([0, 1], dtype=np.uint8)
        keys = np.array([3, 4], dtype=np.uint64)
        journal.append_epoch(0, 0, 2, kinds, keys)
        journal.commit(0, 0, 2)
        moves = [(5, 0, 1), (9, 0, 2)]
        journal.append_rebalance(0, 2, moves)
        journal.close()
        scan = EpochJournal.scan(path)
        assert [r.kind for r in scan.redo] == ["ops", "rebalance"]
        reb = scan.redo[-1]
        assert reb.epoch == 0  # the migration sequence number
        assert reb.moves == tuple(moves)
        assert scan.committed_bytes == scan.valid_bytes
        assert scan.uncommitted_ops == 0

    def test_empty_move_list_is_rejected(self, tmp_path):
        journal = EpochJournal(tmp_path / "j.bin", fsync=False)
        with pytest.raises(ValueError):
            journal.append_rebalance(0, 0, [])

    def test_torn_rebalance_tail_is_discarded(self, tmp_path):
        path = tmp_path / "j.bin"
        journal = EpochJournal(path, fsync=False)
        journal.append_rebalance(0, 0, [(5, 0, 1), (9, 0, 2)])
        journal.close()
        whole = path.read_bytes()
        path.write_bytes(whole[:-5])  # tear mid-payload
        scan = EpochJournal.scan(path)
        assert scan.redo == []
        assert scan.committed_bytes == 0

    def test_crash_between_record_and_migration_recovers(self, tmp_path, monkeypatch):
        """The chaos case: REBALANCE is durable, the drains never ran.

        Recovery replays the committed epochs, re-executes the journaled
        migration against the replayed shard state, and the resumed run
        lands bit-identical to an uninterrupted twin.
        """
        kinds, keys = _skewed_trace(4000)
        ref = _make_service(rebalance=True)
        ref.run(kinds, keys)
        assert ref.migrations_applied > 0  # the scenario actually fires

        svc = _make_service(
            rebalance=True, journal=EpochJournal(tmp_path / "j.bin", fsync=False)
        )
        snapshot_service(svc, tmp_path / "s.pkl")
        crashed = {}
        original = DictionaryService._apply_moves

        def power_loss(self, moves):
            if not crashed:
                crashed["at"] = self.ops_committed
                raise RuntimeError("crash mid-migration")
            return original(self, moves)

        monkeypatch.setattr(DictionaryService, "_apply_moves", power_loss)
        with pytest.raises(RuntimeError, match="crash mid-migration"):
            svc.run(kinds, keys)
        svc.journal.close()
        monkeypatch.setattr(DictionaryService, "_apply_moves", original)

        rep = recover(tmp_path / "s.pkl", tmp_path / "j.bin")
        twin = rep.service
        assert twin.migrations_applied == 1  # the journaled moves re-ran
        resume = rep.committed_through
        assert resume == crashed["at"]
        twin.run(kinds[resume:], keys[resume:])
        twin.journal.close()
        assert _state(twin) == _state(ref)

    def test_snapshot_after_migration_skips_replayed_record(self, tmp_path):
        """A snapshot containing migration N must not re-apply record N."""
        kinds, keys = _skewed_trace(4000)
        svc = _make_service(
            rebalance=True, journal=EpochJournal(tmp_path / "j.bin", fsync=False)
        )
        svc.run(kinds[:2600], keys[:2600])
        assert svc.migrations_applied > 0
        snapshot_service(svc, tmp_path / "s.pkl")
        svc.run(kinds[2600:], keys[2600:])
        svc.journal.close()
        rep = recover(tmp_path / "s.pkl", tmp_path / "j.bin")
        twin = rep.service
        twin.journal.close()
        assert _state(twin) == _state(svc)

    def test_directory_round_trips_through_snapshot(self, tmp_path):
        kinds, keys = _skewed_trace(3000)
        svc = _make_service(rebalance=True)
        svc.run(kinds, keys)
        assert not svc.directory.is_static()
        snapshot_service(svc, tmp_path / "s.pkl")
        twin = restore_service(tmp_path / "s.pkl")
        np.testing.assert_array_equal(
            twin.directory.slot_map, svc.directory.slot_map
        )
        assert twin.directory.version == svc.directory.version
        probe = np.random.default_rng(4).integers(0, U, size=4096, dtype=np.uint64)
        np.testing.assert_array_equal(
            twin.directory.shards_of(probe), svc.directory.shards_of(probe)
        )


# ---------------------------------------------------------------------------
# Generator determinism (satellite 3)


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    @pytest.mark.parametrize("chunk", [1, 7, 64, 500])
    def test_stream_equals_take_at_every_chunk_size(self, kind, chunk):
        want = _gen(kind).take(300)
        got = list(islice(_gen(kind).stream(chunk), 300))
        assert got == want

    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    def test_split_takes_equal_one_take(self, kind):
        whole = _gen(kind).take(300)
        gen = _gen(kind)
        assert gen.take(113) + gen.take(187) == whole

    def test_zipf_rejects_invalid_theta(self):
        with pytest.raises(ValueError, match="θ > 1"):
            ZipfKeys(U, theta=1.0)
        with pytest.raises(ValueError, match="θ > 1"):
            ZipfKeys(U, theta=0.3)
