"""Unit tests for workload generators, drivers and metrics."""

import numpy as np
import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.tables.chaining import ChainedHashTable
from repro.workloads.drivers import (
    compare_tables,
    measure_insert_cost,
    measure_query_cost,
    measure_table,
    trace_insert_history,
)
from repro.workloads.generators import (
    AdversarialBucketKeys,
    ClusteredKeys,
    SequentialKeys,
    UniformKeys,
    ZipfKeys,
    make_generator,
)
from repro.workloads.metrics import CostHistory, RunningStats, summarize

U = 2**40


class TestGenerators:
    @pytest.mark.parametrize("kind", ["uniform", "sequential", "zipf", "clustered"])
    def test_distinct_and_in_range(self, kind):
        gen = make_generator(kind, U, seed=1)
        ks = gen.take(2000)
        assert len(set(ks)) == 2000
        assert all(0 <= k < U for k in ks)

    @pytest.mark.parametrize("kind", ["uniform", "sequential", "zipf", "clustered"])
    def test_deterministic_given_seed(self, kind):
        a = make_generator(kind, U, seed=9).take(200)
        b = make_generator(kind, U, seed=9).take(200)
        assert a == b

    def test_reset_replays(self):
        gen = UniformKeys(U, seed=4)
        first = gen.take(100)
        gen.reset()
        assert gen.take(100) == first

    def test_stream_iterator(self):
        gen = UniformKeys(U, seed=2)
        it = gen.stream(chunk=10)
        got = [next(it) for _ in range(25)]
        assert len(set(got)) == 25

    def test_sequential_stride(self):
        gen = SequentialKeys(U, start=100, stride=5)
        assert gen.take(4) == [100, 105, 110, 115]

    def test_sequential_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            SequentialKeys(U, stride=0)

    def test_zipf_needs_theta_above_one(self):
        with pytest.raises(ValueError):
            ZipfKeys(U, theta=1.0)

    def test_clustered_keys_confined(self):
        gen = ClusteredKeys(U, seed=3, clusters=4, width=1000)
        ks = np.array(sorted(gen.take(500)))
        gaps = np.diff(ks)
        # At most 4 big jumps between clusters.
        assert (gaps > 1000).sum() <= 4

    def test_exhausting_small_universe_rejected(self):
        gen = UniformKeys(16, seed=0)
        gen.take(10)
        with pytest.raises(ValueError):
            gen.take(10)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown generator"):
            make_generator("nope", U)

    def test_adversarial_keys_hit_hot_buckets(self):
        h = MULTIPLY_SHIFT.sample(U, seed=5)
        gen = AdversarialBucketKeys(U, seed=1, hash_fn=h, buckets=64, hot=2)
        ks = gen.take(300)
        assert len(set(ks)) == 300
        assert all(h.bucket(k, 64) < 2 for k in ks)


class TestMetrics:
    def test_running_stats_mean_std(self):
        rs = RunningStats()
        data = [1.0, 2.0, 3.0, 4.0]
        rs.add_many(data)
        assert rs.mean == pytest.approx(2.5)
        assert rs.std == pytest.approx(np.std(data, ddof=1))
        assert rs.min == 1.0 and rs.max == 4.0

    def test_running_stats_merge_matches_single_stream(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=100), rng.normal(size=50)
        left, right, whole = RunningStats(), RunningStats(), RunningStats()
        left.add_many(a)
        right.add_many(b)
        whole.add_many(np.concatenate([a, b]))
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.variance == pytest.approx(whole.variance)

    def test_merge_with_empty(self):
        rs = RunningStats()
        rs.add(5.0)
        rs.merge(RunningStats())
        assert rs.count == 1
        empty = RunningStats()
        empty.merge(rs)
        assert empty.mean == 5.0

    def test_summarize(self):
        s = summarize([1, 1, 2, 10])
        assert s.count == 4
        assert s.p50 == pytest.approx(1.5)
        assert s.max == 10

    def test_summarize_empty(self):
        s = summarize([])
        assert s.count == 0
        assert s.mean == 0.0

    def test_cost_history(self):
        h = CostHistory()
        h.record(100, 50)
        h.record(200, 150)
        assert h.amortized() == pytest.approx(0.75)
        assert h.windowed() == [(100, 0.5), (200, 1.0)]

    def test_cost_history_ordering_enforced(self):
        h = CostHistory()
        h.record(100, 50)
        with pytest.raises(ValueError):
            h.record(50, 60)


def chaining_factory(c):
    return ChainedHashTable(c, MULTIPLY_SHIFT.sample(c.u, 7))


def ctx_factory():
    return make_context(b=64, m=1024)


class TestDrivers:
    def test_measure_insert_cost(self, keys):
        ctx = ctx_factory()
        t = chaining_factory(ctx)
        total, amortized = measure_insert_cost(t, keys[:500])
        assert total > 0
        assert amortized == pytest.approx(total / 500)

    def test_measure_query_cost_all_hits(self, keys):
        ctx = ctx_factory()
        t = chaining_factory(ctx)
        t.insert_many(keys[:500])
        s = measure_query_cost(t, keys[:500], sample_size=100, seed=1)
        assert s.count == 100
        assert s.mean >= 1.0

    def test_measure_query_cost_detects_lost_keys(self, keys):
        ctx = ctx_factory()
        t = chaining_factory(ctx)
        t.insert_many(keys[:10])
        with pytest.raises(AssertionError, match="lost key"):
            measure_query_cost(t, [999999999999], sample_size=5)

    def test_measure_table_end_to_end(self):
        m = measure_table(ctx_factory, chaining_factory, 800, seed=3)
        assert m.n == 800
        assert m.t_u > 0
        assert m.t_q >= 1.0
        assert m.memory_high_water <= 1024
        row = m.row()
        assert set(row) >= {"n", "t_u", "t_q"}

    def test_query_ios_excluded_from_insert_figure(self):
        """t_u must not include the query phase's I/Os."""
        m1 = measure_table(ctx_factory, chaining_factory, 500, seed=5, query_sample=1)
        m2 = measure_table(ctx_factory, chaining_factory, 500, seed=5, query_sample=500)
        assert m1.t_u == pytest.approx(m2.t_u)

    def test_trace_insert_history_monotone(self):
        hist = trace_insert_history(ctx_factory, chaining_factory, 1000, checkpoints=8)
        ns = [n for n, _ in hist.checkpoints]
        assert ns == sorted(ns)
        assert ns[-1] == 1000
        assert hist.amortized() > 0

    def test_compare_tables_rows(self):
        rows = compare_tables(
            ctx_factory,
            {"chain-a": chaining_factory, "chain-b": chaining_factory},
            400,
        )
        assert len(rows) == 2
        assert {r["table"] for r in rows} == {"chain-a", "chain-b"}
