"""Unit + property tests for the external priority queue."""

import heapq
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.em import ConfigurationError, make_context
from repro.baselines.priority_queue import ExternalPriorityQueue


def build(b=16, m=256, **kw):
    ctx = make_context(b=b, m=m)
    return ctx, ExternalPriorityQueue(ctx, **kw)


class TestBasics:
    def test_push_pop_sorted(self):
        _, pq = build()
        data = random.Random(1).sample(range(10**6), 2000)
        for x in data:
            pq.push(x)
        out = [pq.pop_min() for _ in range(len(data))]
        assert out == sorted(data)
        assert len(pq) == 0

    def test_duplicates_allowed(self):
        _, pq = build()
        for x in [5, 5, 3, 5, 3]:
            pq.push(x)
        assert [pq.pop_min() for _ in range(5)] == [3, 3, 5, 5, 5]

    def test_pop_empty_raises(self):
        _, pq = build()
        with pytest.raises(IndexError):
            pq.pop_min()

    def test_peek_does_not_remove(self):
        _, pq = build()
        pq.push(9)
        pq.push(2)
        assert pq.peek_min() == 2
        assert len(pq) == 2

    def test_needs_memory(self):
        with pytest.raises(ConfigurationError):
            ExternalPriorityQueue(make_context(b=64, m=256))

    def test_interleaved_push_pop(self):
        """New pushes below already-surfaced minima must still win —
        the delete-heap/run invariant."""
        _, pq = build(m=128)
        rng = random.Random(2)
        model: list[int] = []
        for step in range(3000):
            if model and rng.random() < 0.45:
                assert pq.pop_min() == heapq.heappop(model)
            else:
                x = rng.randrange(10**9)
                pq.push(x)
                heapq.heappush(model, x)
            if step % 500 == 0:
                pq.check_invariants()
        while model:
            assert pq.pop_min() == heapq.heappop(model)


class TestCosts:
    def test_amortized_io_o1(self):
        """The Section 1 exhibit: n pushes + n pops in o(n) I/Os."""
        ctx, pq = build(b=64, m=1024)
        n = 8000
        data = random.Random(3).sample(range(10**9), n)
        for x in data:
            pq.push(x)
        for _ in range(n):
            pq.pop_min()
        amortized = ctx.io_total() / (2 * n)
        assert amortized < 0.25  # ≪ 1; model predicts ~(1/b)·log(n/m)

    def test_memory_within_budget(self):
        ctx, pq = build()
        for x in random.Random(4).sample(range(10**9), 3000):
            pq.push(x)
        assert ctx.memory.within_budget()
        pq.check_invariants()

    def test_merge_bounds_run_count(self):
        _, pq = build(m=256, max_runs=3)
        for x in random.Random(5).sample(range(10**9), 4000):
            pq.push(x)
        assert len(pq._runs) <= 4
        pq.check_invariants()


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(0, 1000)),
                st.tuples(st.just("pop"), st.just(0)),
            ),
            max_size=150,
        )
    )
    def test_matches_heapq_model(self, ops):
        ctx = make_context(b=16, m=256)
        pq = ExternalPriorityQueue(ctx, heap_items=8, max_runs=2)
        model: list[int] = []
        for op, val in ops:
            if op == "push":
                pq.push(val)
                heapq.heappush(model, val)
            elif model:
                assert pq.pop_min() == heapq.heappop(model)
            else:
                with pytest.raises(IndexError):
                    pq.pop_min()
        assert len(pq) == len(model)
        pq.check_invariants()
        while model:
            assert pq.pop_min() == heapq.heappop(model)
