"""Unit tests for the external B-tree."""

import random

import pytest

from repro.em import ConfigurationError, make_context
from repro.baselines.btree import BTree


def build(b=32, m=512, **kw):
    ctx = make_context(b=b, m=m)
    return ctx, BTree(ctx, **kw)


class TestInsertLookup:
    def test_roundtrip(self, keys):
        _, t = build()
        t.insert_many(keys)
        assert len(t) == len(keys)
        assert all(t.lookup(k) for k in keys[::13])
        t.check_invariants()

    def test_sorted_insertion_order(self):
        """Ascending inserts are the classic split-heavy path."""
        _, t = build(b=8)
        ks = list(range(1000))
        t.insert_many(ks)
        t.check_invariants()
        assert all(t.lookup(k) for k in ks[::37])

    def test_reverse_sorted_insertion(self):
        _, t = build(b=8)
        ks = list(range(1000, 0, -1))
        t.insert_many(ks)
        t.check_invariants()
        assert all(t.lookup(k) for k in ks[::37])

    def test_duplicates_noop(self):
        _, t = build()
        t.insert(5)
        t.insert(5)
        assert len(t) == 1

    def test_absent(self, keys):
        _, t = build()
        t.insert_many(keys[:500])
        assert not any(t.lookup(k) for k in range(10**13, 10**13 + 50))

    def test_height_grows_logarithmically(self, keys):
        _, t = build(b=8)
        t.insert_many(keys)
        # max_keys = 2·(8//4)+1 = 5 per node; 2000 keys need height ≥ 4;
        # a balanced tree stays well under 12.
        assert 3 <= t.height <= 12

    def test_min_keys_validation(self):
        ctx = make_context(b=8, m=512)
        with pytest.raises(ConfigurationError):
            BTree(ctx, min_keys=10)  # 2·10+1 > 8


class TestDeletion:
    def test_delete_from_leaves(self, keys):
        _, t = build()
        t.insert_many(keys[:500])
        for k in keys[:100]:
            assert t.delete(k)
        t.check_invariants()
        assert len(t) == 400
        assert not any(t.lookup(k) for k in keys[:100])
        assert all(t.lookup(k) for k in keys[100:500])

    def test_delete_absent(self, keys):
        _, t = build()
        t.insert_many(keys[:50])
        assert not t.delete(10**15)
        assert len(t) == 50

    def test_delete_internal_separators(self):
        """Deleting every other key forces separator replacement and
        borrow/merge traffic."""
        _, t = build(b=8)
        ks = list(range(2000))
        t.insert_many(ks)
        random.Random(5).shuffle(ks)
        for k in ks[:1500]:
            assert t.delete(k)
        t.check_invariants()
        survivors = ks[1500:]
        assert all(t.lookup(k) for k in survivors)
        assert len(t) == 500

    def test_delete_everything(self):
        _, t = build(b=8)
        ks = list(range(300))
        t.insert_many(ks)
        for k in ks:
            assert t.delete(k)
        assert len(t) == 0
        t.check_invariants()
        # Tree is reusable afterwards.
        t.insert_many(range(500, 550))
        assert all(t.lookup(k) for k in range(500, 550))

    def test_root_shrinks_on_mass_delete(self):
        _, t = build(b=8)
        t.insert_many(range(1000))
        h_full = t.height
        for k in range(990):
            t.delete(k)
        assert t.height <= h_full
        t.check_invariants()


class TestCosts:
    def test_lookup_costs_height_minus_one(self, keys):
        """Root is memory-pinned: a lookup reads height−1 blocks."""
        ctx, t = build(b=8)
        t.insert_many(keys)
        before = ctx.stats.snapshot()
        sample = keys[::41]
        for k in sample:
            t.lookup(k)
        avg = ctx.stats.delta_since(before).total / len(sample)
        assert avg <= t.height - 1 + 0.01
        assert avg >= 1.0

    def test_insert_cost_at_least_one_io(self, keys):
        """The ordered-baseline contrast: every insert pays ≥ ~1 I/O."""
        ctx, t = build(b=32)
        t.insert_many(keys[:1000])
        assert ctx.io_total() / 1000 >= 0.9

    def test_memory_is_root_only(self, keys):
        ctx, t = build()
        t.insert_many(keys[:1000])
        assert ctx.memory.within_budget()
        assert t.memory_words() <= 2 * t.max_keys + 4


class TestSnapshot:
    def test_snapshot_complete(self, keys):
        _, t = build()
        t.insert_many(keys[:400])
        snap = t.layout_snapshot()
        assert snap.item_count() == 400

    def test_tall_tree_has_no_one_io_address(self, keys):
        """Height > 2: f must return None — B-trees are structurally
        ≥ 2 I/Os per disk item, the paper's foil."""
        _, t = build(b=8)
        t.insert_many(keys)
        assert t.height > 2
        snap = t.layout_snapshot()
        assert all(snap.address(k) is None for k in keys[:20])

    def test_height_two_tree_is_one_io(self):
        _, t = build(b=32)
        t.insert_many(range(100))
        if t.height == 2:
            snap = t.layout_snapshot()
            on_disk = snap.disk_items()
            hits = [k for k in on_disk if snap.address(k) is not None]
            assert len(hits) == len(on_disk)
