"""Unit tests for the Knuth §6.4 query-cost numerics."""

import math

import numpy as np
import pytest

from repro.analysis.knuth import (
    binomial_bucket_pmf,
    expected_chain_blocks,
    expected_successful_cost,
    expected_unsuccessful_cost,
    knuth_table,
    overflow_exponent,
    overflow_probability,
    poisson_bucket_pmf,
)


class TestOccupancyPMFs:
    def test_poisson_pmf_sums_to_one(self):
        pmf = poisson_bucket_pmf(0.8, 64)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-12)

    def test_poisson_mean(self):
        pmf = poisson_bucket_pmf(0.5, 100)
        mean = float(np.dot(pmf, np.arange(len(pmf))))
        assert mean == pytest.approx(50.0, rel=1e-9)

    def test_binomial_pmf_matches_poisson_limit(self):
        """Binomial(n, 1/d) → Poisson(n/d) for large n, d."""
        b = 32
        pois = poisson_bucket_pmf(0.5, b)
        binom = binomial_bucket_pmf(n=160_000, d=10_000, b=b)
        k = min(len(pois), len(binom))
        assert np.abs(pois[:k] - binom[:k]).max() < 1e-3

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            poisson_bucket_pmf(-0.1, 64)


class TestQueryCosts:
    def test_empty_table_costs_one(self):
        assert expected_successful_cost(0.0, 64) == 1.0

    def test_half_load_is_almost_one(self):
        """The paper's headline: t_q = 1 + 1/2^Ω(b) at moderate load."""
        t = expected_successful_cost(0.5, 128)
        # The true excess (~2^-47) is below double rounding noise, so
        # equality-to-1 within 1e-12 is the observable statement.
        assert t == pytest.approx(1.0, abs=1e-12)
        # At a smaller b the excess is visible and positive.
        t32 = expected_successful_cost(0.5, 32)
        assert 1.0 < t32 < 1.001

    def test_excess_decays_exponentially_in_b(self):
        """Doubling b should at least square away the excess."""
        e32 = expected_successful_cost(0.7, 32) - 1
        e64 = expected_successful_cost(0.7, 64) - 1
        e128 = expected_successful_cost(0.7, 128) - 1
        assert e64 < e32 / 4
        assert e128 < e64 / 4

    def test_cost_increases_with_load(self):
        costs = [expected_successful_cost(a, 64) for a in (0.5, 0.7, 0.9, 0.99)]
        assert costs == sorted(costs)

    def test_exact_binomial_close_to_poisson(self):
        pois = expected_successful_cost(0.8, 32)
        exact = expected_successful_cost(0.8, 32, n=25_600, d=1000)
        assert exact == pytest.approx(pois, abs=1e-3)

    def test_unsuccessful_at_least_one(self):
        assert expected_unsuccessful_cost(0.0, 64) == pytest.approx(1.0)
        assert expected_unsuccessful_cost(0.9, 64) >= 1.0

    def test_unsuccessful_geq_chain_blocks_intuition(self):
        """Unsuccessful lookups read whole chains: ≥ E[blocks]·P[occupied]."""
        a, b = 0.9, 16
        assert expected_unsuccessful_cost(a, b) >= expected_chain_blocks(a, b) - 1e-9

    def test_tiny_block_degenerates_to_chaining(self):
        """b = 1 is classic per-item chaining: costs grow with α."""
        t = expected_successful_cost(0.9, 1)
        assert t > 1.2


class TestOverflow:
    def test_overflow_probability_decreasing_in_b(self):
        ps = [overflow_probability(0.8, b) for b in (16, 32, 64, 128, 256)]
        assert ps == sorted(ps, reverse=True)
        assert ps[-1] < 1e-2

    def test_overflow_exponent_positive_below_one(self):
        assert overflow_exponent(0.5) > 0
        assert overflow_exponent(0.99) > 0
        assert overflow_exponent(1.0) == pytest.approx(0.0, abs=1e-12)

    def test_overflow_matches_exponent_asymptotics(self):
        """−log₂ P[X > b] / b ≈ rate for large b."""
        alpha = 0.5
        rate = overflow_exponent(alpha)
        b = 512
        measured = -math.log2(overflow_probability(alpha, b)) / b
        assert measured == pytest.approx(rate, rel=0.2)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            overflow_exponent(0.0)


class TestReferenceTable:
    def test_table_rows_complete(self):
        rows = knuth_table(b_values=[16, 64], alphas=[0.5, 0.9])
        assert len(rows) == 4
        for row in rows:
            assert row.successful >= 1.0
            assert row.unsuccessful >= 1.0
            assert 0 <= row.overflow <= 1

    def test_excess_bits_scale_with_b(self):
        rows = {r.b: r for r in knuth_table(b_values=[32, 128], alphas=[0.5])}
        assert rows[128].excess_bits > rows[32].excess_bits

    def test_excess_bits_infinite_when_exact_one(self):
        rows = knuth_table(b_values=[1024], alphas=[0.5])
        # At b=1024 and α=0.5 the excess underflows double precision.
        assert rows[0].excess_bits == math.inf or rows[0].excess_bits > 100
