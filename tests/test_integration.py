"""Integration tests: the paper's claims, measured end to end.

These cross-module tests are small versions of the benchmark
experiments: they drive real tables through the workload drivers and
check the *shape* of the paper's results — who wins, in which regime,
and that the proof's accounting objects (zones, inequality (1),
round certificates) describe the measured structures.
"""

import math

import pytest

from repro.em import make_context
from repro.hashing.family import MEMOISED_IDEAL, MULTIPLY_SHIFT, TABULATION
from repro.analysis.knuth import expected_successful_cost
from repro.baselines.buffer_tree import BufferTree
from repro.baselines.lsm import LSMTree
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams, LowerBoundParams
from repro.core.logmethod import LogMethodHashTable
from repro.lowerbound.adversary import run_adversary
from repro.lowerbound.zones import ZoneHistoryPoint, decompose, verify_query_claim
from repro.tables.chaining import ChainedHashTable
from repro.workloads.drivers import measure_query_cost, measure_table
from repro.workloads.generators import UniformKeys


def test_measured_chaining_query_cost_matches_knuth():
    """Measured t_q of blocked chaining ≈ the analytic Knuth number."""
    b, d, n = 32, 128, 2048  # α = 0.5
    ctx = make_context(b=b, m=1024, u=2**40)
    h = MEMOISED_IDEAL.sample(ctx.u, seed=3)
    t = ChainedHashTable(ctx, h, buckets=d, max_load=None)
    keys = UniformKeys(ctx.u, seed=4).take(n)
    t.insert_many(keys)
    measured = measure_query_cost(t, keys, sample_size=1500, seed=5).mean
    analytic = expected_successful_cost(n / (d * b), b, n=n, d=d)
    assert measured == pytest.approx(analytic, abs=0.05)


def test_buffered_table_respects_inequality_1_throughout():
    """Theorem 2's structure keeps |S| ≤ m + δk at every checkpoint,
    with δ = O(1/β) — the layout-level form of its query claim."""
    ctx = make_context(b=32, m=256, u=2**40)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=6)
    t = BufferedHashTable(ctx, h, params=BufferedParams(beta=8))
    gen = UniformKeys(ctx.u, seed=7)
    history = []
    inserted = 0
    for _ in range(12):
        t.insert_many(gen.take(400))
        inserted += 400
        z = decompose(t.layout_snapshot())
        history.append(ZoneHistoryPoint.from_zones(inserted, z))
    delta = 4.0 / 8  # generous constant times 1/β
    assert verify_query_claim(history, ctx.m, delta) == []


def test_limit_of_buffering_contrast():
    """The paper's headline, in one table: structures allowed expensive
    queries insert in o(1) I/Os; the 1-I/O-query hash table pays ~1."""
    n = 3000

    def ctx():
        return make_context(b=64, m=1024, u=2**40)

    def chaining(c):
        return ChainedHashTable(
            c, MULTIPLY_SHIFT.sample(c.u, 8), buckets=128, max_load=None
        )

    def logmethod(c):
        return LogMethodHashTable(c, MULTIPLY_SHIFT.sample(c.u, 8))

    def lsm(c):
        # A small memtable keeps the memory-resident fraction negligible
        # (the paper's t_q regime is n ≫ m).
        return LSMTree(c, gamma=4, memtable_items=128)

    chain = measure_table(ctx, chaining, n, seed=9)
    logm = measure_table(ctx, logmethod, n, seed=9)
    lsmm = measure_table(ctx, lsm, n, seed=9)

    # Insert side: buffered structures beat 1 I/O by a wide margin...
    assert chain.t_u > 0.9
    assert logm.t_u < 0.5
    assert lsmm.t_u < 0.5
    # ...but pay for it on the query side relative to the hash table.
    assert chain.t_q <= 1.05
    assert logm.t_q >= chain.t_q
    assert lsmm.t_q >= chain.t_q


def test_theorem2_tradeoff_shape_in_c():
    """β = b^c: larger c (cheaper queries) must cost more per insert and
    deliver a fresher Ĥ."""
    b, n = 64, 4000
    results = {}
    for c in (0.25, 0.75):
        ctx = make_context(b=b, m=512, u=2**40)
        h = MULTIPLY_SHIFT.sample(ctx.u, seed=10)
        t = BufferedHashTable(ctx, h, params=BufferedParams.for_query_exponent(b, c))
        keys = UniformKeys(ctx.u, seed=11).take(n)
        t.insert_many(keys)
        results[c] = {
            "t_u": ctx.io_total() / n,
            "recent": t.recent_fraction(),
            "beta": t.beta,
        }
    assert results[0.75]["beta"] > results[0.25]["beta"]
    assert results[0.75]["recent"] <= results[0.25]["recent"] + 0.02
    assert results[0.25]["t_u"] <= results[0.75]["t_u"] + 0.05
    # The cheap-query end is o(1) even at this toy scale; the c = 0.75
    # end carries β ≈ b^0.75 scans whose constants only drop for b ≫ β.
    assert results[0.25]["t_u"] < 0.9


def test_adversary_certificate_tracks_standard_table():
    """Theorem 1's accounting: for a 1-I/O-query table, the certified
    per-round lower bound approaches the round size s."""
    ctx = make_context(b=16, m=8192, u=2**40)
    h = MEMOISED_IDEAL.sample(ctx.u, seed=12)
    table = ChainedHashTable(ctx, h, buckets=4096, max_load=None)
    params = LowerBoundParams(delta=1 / 16, phi=0.1, rho=1 / 4096, s=250, case=2)
    report = run_adversary(table, ctx, params, 2500, seed=13)
    assert report.certified_tu > 0.8
    assert report.certified_tu <= report.measured_tu + 1e-9


def test_hash_family_insensitivity():
    """Theorem 2 measurements barely move across hash families."""
    n = 2500
    costs = {}
    for fam in (MULTIPLY_SHIFT, TABULATION, MEMOISED_IDEAL):
        ctx = make_context(b=64, m=512, u=2**40)
        t = BufferedHashTable(
            ctx, fam.sample(ctx.u, seed=14), params=BufferedParams(beta=8)
        )
        keys = UniformKeys(ctx.u, seed=15).take(n)
        t.insert_many(keys)
        costs[fam.name] = ctx.io_total() / n
    values = list(costs.values())
    assert max(values) - min(values) < 0.15, costs


def test_buffer_tree_vs_hash_table_queries():
    """The buffer tree wins on inserts but loses on point queries —
    why buffering 'works' elsewhere yet can't give 1-I/O hashing."""
    n = 3000

    def ctx():
        return make_context(b=64, m=1024, u=2**40)

    bt = measure_table(ctx, lambda c: BufferTree(c), n, seed=16)
    ch = measure_table(
        ctx,
        lambda c: ChainedHashTable(
            c, MULTIPLY_SHIFT.sample(c.u, 17), buckets=128, max_load=None
        ),
        n,
        seed=16,
    )
    assert bt.t_u < ch.t_u
    assert bt.t_q > ch.t_q
