"""The observability layer: tracing, metrics, and the relabelling contract.

Pinned here:

* **framing** — crc-framed JSONL round-trips; a torn tail or a flipped
  byte truncates the scan at the last valid record (journal idiom)
  instead of poisoning it;
* **relabelling** — observability on (span trace to a file, metrics
  folding) leaves lookup/delete results, per-shard ledgers, cluster
  totals and final contents bit-identical to the observability-off run
  of the same stream, across the cached, journaled and rebalancing
  configurations; the trace's charged-I/O records *partition* the
  ledger: ``charged_io(records) == io_snapshot().total``;
* **determinism** — wall-free traces of the same seeded stream are
  byte-identical across runs and executors (serial vs threads), with
  and without a journal; wall-stamped traces agree modulo
  :data:`~repro.obs.WALL_FIELDS`; open-loop traces carry the virtual
  clock and are deterministic;
* **metrics** — the registry is executor-invariant, rides
  snapshot/restore, and its Prometheus dump is well-formed;
* **events** — admission, breaker, rebalance, fsync and cache-evict
  point events appear when (and only when) their subsystems engage.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.buffered import BufferedHashTable
from repro.em import ConfigurationError, make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.obs import (
    LogHistogram,
    MetricsRegistry,
    TraceRecorder,
    charged_io,
    epoch_spans,
    frame_record,
    metric_key,
    scan_trace,
    slowest_shard_batches,
    strip_wall,
    summarize_epochs,
    timeseries_rows,
    unframe_line,
)
from repro.service import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionController,
    ClosedLoopClient,
    DictionaryService,
    EpochJournal,
    ObsConfig,
    OpenLoopClient,
    PoissonArrivals,
    ShardBreakerBoard,
    restore_service,
    snapshot_service,
)
from repro.tables.sharded import _ROUTER_SEED
from repro.workloads.generators import AdversarialBucketKeys, UniformKeys
from repro.workloads.trace import BulkMixedWorkload

U = 2**61 - 1
SHARDS = 4
WINDOW = 512
N = 4096
MIX = (0.25, 0.60, 0.10, 0.05)


def _table_factory(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=61))


def _stream(n=N, *, adversarial=False):
    gen = (
        AdversarialBucketKeys(
            U,
            seed=62,
            hash_fn=MULTIPLY_SHIFT.sample(U, seed=_ROUTER_SEED),
            buckets=SHARDS,
            hot=1,
        )
        if adversarial
        else UniformKeys(U, seed=62)
    )
    wl = BulkMixedWorkload(gen, mix=MIX, seed=63, chunk=WINDOW)
    return wl.take_arrays(n)


def _service(*, obs=None, cache_blocks=0, journal=None, rebalance=None,
             executor="serial"):
    # Memory-starved (m = 4 blocks of 64 words per cluster) so the
    # stream genuinely spills: every epoch charges I/O, and the cached
    # configuration sees hits, misses and evictions.
    ctx = make_context(
        b=64, m=256, u=U, backend="arena", cache_blocks=cache_blocks
    )
    return DictionaryService(
        ctx,
        _table_factory,
        shards=SHARDS,
        epoch_ops=WINDOW,
        executor=executor,
        journal=journal,
        rebalance=rebalance,
        obs=obs,
    )


def _fingerprint(svc, run):
    return (
        run.lookup_found.tolist(),
        run.delete_removed.tolist(),
        svc.io_snapshot().as_dict(),
        [s.as_dict() for s in svc.shard_io_snapshots()],
        len(svc),
    )


# -- framing ----------------------------------------------------------------


def test_frame_unframe_roundtrip():
    rec = {"t": "epoch", "seq": 3, "io": 17, "shards": [{"shard": 0}]}
    line = frame_record(rec)
    assert line.endswith(b"\n") and line[8:9] == b" "
    assert unframe_line(line.rstrip(b"\n")) == rec


def test_unframe_rejects_corruption():
    line = frame_record({"t": "run", "seq": 0}).rstrip(b"\n")
    assert unframe_line(line) is not None
    # Flip one payload byte: crc mismatch.
    corrupt = line[:-1] + (b"x" if line[-1:] != b"x" else b"y")
    assert unframe_line(corrupt) is None
    # Garbage shapes.
    assert unframe_line(b"") is None
    assert unframe_line(b"deadbeef") is None
    assert unframe_line(b"not a frame at all") is None
    # Valid crc over a non-dict JSON payload is still rejected.
    import json
    import zlib

    payload = json.dumps([1, 2]).encode()
    framed = b"%08x " % (zlib.crc32(payload) & 0xFFFFFFFF) + payload
    assert unframe_line(framed) is None


def test_scan_trace_stops_at_torn_tail(tmp_path):
    path = tmp_path / "t.jsonl"
    with TraceRecorder(path) as rec:
        for i in range(5):
            rec.emit("epoch", epoch=i, io=i)
    # Simulate a crash mid-write: append half a frame.
    whole = path.read_bytes()
    path.write_bytes(whole + frame_record({"t": "epoch", "epoch": 9})[:10])
    scan = scan_trace(path)
    assert scan.truncated
    assert scan.valid_lines == 5 and scan.total_lines == 6
    assert [r["epoch"] for r in scan.records] == list(range(5))
    # A flipped byte mid-file truncates there, keeping the valid prefix.
    lines = whole.splitlines(keepends=True)
    lines[2] = b"00000000 {}\n"
    path.write_bytes(b"".join(lines))
    scan = scan_trace(path)
    assert scan.truncated and scan.valid_lines == 2


def test_scan_trace_empty_file(tmp_path):
    path = tmp_path / "e.jsonl"
    path.write_bytes(b"")
    scan = scan_trace(path)
    assert scan.records == [] and not scan.truncated


def test_strip_wall_recurses_into_spans():
    rec = {
        "t": "epoch",
        "wall": 1.5,
        "io": 3,
        "shards": [{"shard": 0, "wall_ms": 0.2, "io": 3}],
    }
    bare = strip_wall(rec)
    assert bare == {"t": "epoch", "io": 3, "shards": [{"shard": 0, "io": 3}]}
    # Original untouched.
    assert "wall" in rec and "wall_ms" in rec["shards"][0]


def test_wall_free_recorder_strips_caller_wall_fields():
    rec = TraceRecorder(None, wall=False)
    rec.emit("epoch", epoch=0, wall_ms=3.2, shards=[{"shard": 1, "wall_ms": 1}])
    (record,) = rec.records
    assert "wall" not in record and "wall_ms" not in record
    assert record["shards"] == [{"shard": 1}]


# -- metrics registry -------------------------------------------------------


def test_log_histogram_binning():
    h = LogHistogram()
    assert LogHistogram.bucket_index(0) == 0
    assert LogHistogram.bucket_index(1) == 1
    assert LogHistogram.bucket_index(2) == 2
    assert LogHistogram.bucket_index(3) == 2
    assert LogHistogram.bucket_index(4) == 3
    assert LogHistogram.bucket_index(2**70) == 63
    for v in (0, 1, 2, 3, 1000):
        h.observe(v)
    d = h.as_dict()
    assert d["count"] == 5 and d["sum"] == 1006
    assert d["buckets"][2] == 2
    h2 = LogHistogram()
    for v in (0, 1, 2, 3, 1000):
        h2.observe(v)
    assert h == h2


def test_metric_key_sorts_labels():
    assert metric_key("x", {"b": 2, "a": 1}) == 'x{a="1",b="2"}'
    assert metric_key("x", {}) == "x"


def test_registry_counters_gauges_histograms():
    m = MetricsRegistry()
    m.inc("ops_total", 3, kind="insert")
    m.inc("ops_total", 2, kind="insert")
    m.inc("ops_total", 0, kind="delete")  # zero increments leave no key
    m.set_gauge("depth", 7)
    m.observe("epoch_io", 100)
    assert m.counter("ops_total", kind="insert") == 5
    assert m.counter("ops_total", kind="delete") == 0
    assert m.gauge("depth") == 7
    assert m.histogram("epoch_io").as_dict()["count"] == 1
    text = m.render()
    assert "# TYPE ops_total counter" in text
    assert 'ops_total{kind="insert"} 5' in text
    assert "# TYPE epoch_io histogram" in text
    assert "epoch_io_count 1" in text
    assert 'le="+Inf"' in text


def test_registry_pickles_and_compares():
    m = MetricsRegistry()
    m.inc("a", 2, x="1")
    m.observe("h", 9)
    m.set_gauge("g", 0.5)
    twin = pickle.loads(pickle.dumps(m))
    assert twin == m
    twin.inc("a", 1, x="1")
    assert twin != m


def test_obs_config_validation():
    with pytest.raises(ConfigurationError):
        ObsConfig(metrics_every=-1)
    with pytest.raises(ConfigurationError):
        ObsConfig(trace_path="")
    assert ObsConfig().trace_path is None


# -- the relabelling contract ------------------------------------------------


@pytest.mark.parametrize("cache_blocks", [0, 4])
def test_tracing_is_relabelling_only(tmp_path, cache_blocks):
    kinds, keys = _stream()
    with _service(cache_blocks=cache_blocks) as svc:
        baseline = _fingerprint(svc, svc.run(kinds, keys))

    trace = tmp_path / "t.jsonl"
    with _service(
        cache_blocks=cache_blocks, obs=ObsConfig(trace_path=str(trace))
    ) as svc:
        traced = _fingerprint(svc, svc.run(kinds, keys))
        total = svc.io_snapshot().total
    assert traced == baseline

    records = scan_trace(trace).records
    # The trace partitions the ledger: setup + epochs (+ migrations)
    # sum exactly to the cluster's charged total.
    assert charged_io(records) == total
    spans = epoch_spans(records)
    assert len(spans) == N // WINDOW
    for span in spans:
        assert span["io"] == sum(s["io"] for s in span["shards"])
    if cache_blocks:
        assert any("cache" in s for s in spans)


def test_tracing_is_relabelling_under_rebalance_and_journal(tmp_path):
    kinds, keys = _stream(adversarial=True)

    def leg(obs, journal_path):
        journal = EpochJournal(journal_path, fsync=False)
        with _service(journal=journal, rebalance=True, obs=obs) as svc:
            fp = _fingerprint(svc, svc.run(kinds, keys))
            extras = (svc.migrated_slots, svc.migration_io, svc.epochs_run)
            total = svc.io_snapshot().total
        return fp, extras, total

    base_fp, base_extras, _ = leg(None, tmp_path / "j0.bin")
    trace = tmp_path / "t.jsonl"
    traced_fp, traced_extras, total = leg(
        ObsConfig(trace_path=str(trace)), tmp_path / "j1.bin"
    )
    assert traced_fp == base_fp and traced_extras == base_extras
    assert base_extras[0] > 0, "adversarial stream must trigger migration"

    records = scan_trace(trace).records
    assert charged_io(records) == total
    rebalances = [r for r in records if r["t"] == "rebalance"]
    assert rebalances and sum(r["slots_moved"] for r in rebalances) == base_extras[0]
    assert sum(r["io"] for r in rebalances) == base_extras[1]
    fsyncs = [r for r in records if r["t"] == "fsync"]
    assert {r["kind"] for r in fsyncs} == {"commit", "rebalance"}
    assert len([r for r in fsyncs if r["kind"] == "commit"]) == base_extras[2]


# -- determinism -------------------------------------------------------------


@pytest.mark.parametrize("journaled", [False, True])
def test_wall_free_trace_is_byte_identical(tmp_path, journaled):
    kinds, keys = _stream()

    def run(tag, executor):
        path = tmp_path / f"{tag}.jsonl"
        journal = (
            EpochJournal(tmp_path / f"{tag}.bin", fsync=False)
            if journaled
            else None
        )
        obs = ObsConfig(trace_path=str(path), wall_clock=False)
        with _service(journal=journal, executor=executor, obs=obs) as svc:
            svc.run(kinds, keys)
        return path.read_bytes()

    a = run("a", "serial")
    b = run("b", "serial")
    c = run("c", "threads")
    # Same executor: the whole file is byte-identical run to run.
    assert a == b
    # Across executors everything matches except the run_start record's
    # executor label (a config field, not a measurement).
    ra = scan_trace(tmp_path / "a.jsonl").records
    rc = scan_trace(tmp_path / "c.jsonl").records
    assert ra and ra[0].pop("executor") == "serial"
    assert rc[0].pop("executor") == "threads"
    assert ra == rc
    assert a.splitlines()[1:] == c.splitlines()[1:]


def test_wall_trace_agrees_modulo_wall_fields(tmp_path):
    kinds, keys = _stream()
    paths = [tmp_path / "w0.jsonl", tmp_path / "w1.jsonl"]
    for path in paths:
        with _service(obs=ObsConfig(trace_path=str(path))) as svc:
            svc.run(kinds, keys)
    r0, r1 = (scan_trace(p).records for p in paths)
    assert [strip_wall(r) for r in r0] == [strip_wall(r) for r in r1]
    assert r0 != r1 or all("wall" not in r for r in r0)


def test_open_loop_trace_carries_virtual_clock():
    kinds, keys = _stream()

    def run():
        recorder = TraceRecorder(None, wall=False)
        with _service(obs=recorder) as svc:
            client = OpenLoopClient(
                svc,
                PoissonArrivals(50_000.0, seed=11),
                controller=AdmissionController(queue_depth=64, policy="shed"),
                service_rate=25_000.0,
            )
            rep = client.drive(kinds, keys)
        return recorder.records, rep

    records_a, rep_a = run()
    records_b, rep_b = run()
    assert records_a == records_b, "virtual-clock trace must be deterministic"
    assert rep_a.shed == rep_b.shed and rep_a.shed > 0
    admissions = [r for r in records_a if r["t"] == "admission"]
    assert admissions and all("vt" in r for r in admissions)
    assert admissions[-1]["shed"] == rep_a.shed
    # Overload shows up in the exported time series too.
    rows = timeseries_rows(records_a)
    assert sum(r["shed"] for r in rows) == rep_a.shed + rep_a.rejected
    assert all("queue" in r for r in rows)


# -- metrics folding over the service ----------------------------------------


def test_metrics_match_service_counters_and_executors():
    kinds, keys = _stream()
    dicts = []
    for executor in ("serial", "threads"):
        with _service(executor=executor) as svc:
            svc.run(kinds, keys)
            m = svc.metrics()
            assert m.counter("repro_epochs_total") == svc.epochs_run
            ops = sum(
                m.counter("repro_ops_total", kind=k)
                for k in ("insert", "lookup", "delete")
            )
            assert ops == N
            snap = svc.io_snapshot()
            # total nets out combined RMWs: reads + writes.
            assert (
                m.counter("repro_io_reads_total")
                + m.counter("repro_io_writes_total")
                == snap.total
            )
            assert m.counter("repro_io_combined_total") == snap.combined
            shard_sum = sum(
                m.counter("repro_shard_io_total", shard=str(i))
                for i in range(SHARDS)
            )
            assert shard_sum == snap.total
            dicts.append(m.as_dict())
    assert dicts[0] == dicts[1], "metrics registry must be executor-invariant"


def test_metrics_survive_snapshot_restore(tmp_path):
    kinds, keys = _stream()
    half = N // 2
    with _service() as svc:
        svc.run(kinds[:half], keys[:half])
        snapshot_service(svc, tmp_path / "s.pkl")
        svc.run(kinds[half:], keys[half:])
        full = svc.metrics().as_dict()

    twin = restore_service(tmp_path / "s.pkl")
    assert twin.metrics().counter("repro_epochs_total") == half // WINDOW
    twin.run(kinds[half:], keys[half:])
    assert twin.metrics().as_dict() == full
    twin.close()


def test_metrics_listener_fires_every_k_epochs():
    kinds, keys = _stream()
    seen = []
    with _service(obs=ObsConfig(metrics_every=2)) as svc:
        svc.metrics_listener = lambda epoch, m: seen.append(epoch)
        svc.run(kinds, keys)
    assert seen == [2, 4, 6, 8]


# -- breaker + admission events ----------------------------------------------


def test_breaker_board_transition_hook():
    board = ShardBreakerBoard(2, threshold=1, cooldown=10.0)
    events = []
    board.on_transition = lambda *args: events.append(args)
    board.record_failure(1, now=0.0)
    assert board.blocked(1, now=1.0)
    assert not board.blocked(1, now=11.0)  # probe allowed: half-open
    board.record_success(1, now=11.5)
    assert events == [
        (1, BREAKER_CLOSED, BREAKER_OPEN, 0.0),
        (1, BREAKER_OPEN, BREAKER_HALF_OPEN, 11.0),
        (1, BREAKER_HALF_OPEN, BREAKER_CLOSED, 11.5),
    ]
    assert board.trips == 1 and board.recoveries == 1


# -- export / summaries ------------------------------------------------------


def _traced_run():
    kinds, keys = _stream()
    recorder = TraceRecorder(None)
    with _service(obs=recorder) as svc:
        svc.run(kinds, keys)
        total = svc.io_snapshot().total
    return recorder.records, total


def test_summaries_and_timeseries_rows():
    records, total = _traced_run()
    epochs = N // WINDOW
    rows = timeseries_rows(records)
    assert [r["epoch"] for r in rows] == list(range(epochs))
    assert sum(r["ops"] for r in rows) == N
    # Early epochs may be fully buffer-resident (io 0); the steady
    # state must charge.
    assert rows[-1]["io_op"] > 0
    assert all(r["kops"] > 0 for r in rows)

    summary = summarize_epochs(records)
    assert len(summary) == epochs
    assert sum(r["io"] for r in summary) + charged_io(
        [r for r in records if r["t"] == "run_start"]
    ) == total

    slow = slowest_shard_batches(records, top=5)
    assert len(slow) == 5
    assert slow[0]["wall_ms"] >= slow[-1]["wall_ms"]


def test_closed_loop_report_row_schema_zero_fills():
    kinds, keys = _stream(1024)
    with _service() as svc:
        rep = ClosedLoopClient(svc, window=WINDOW).drive(kinds, keys)
    row = rep.row()
    assert list(row) == [c for c, _, _ in rep.ROW_SCHEMA]
    # Closed-loop, uncached, static routing: overload/cache/migration
    # columns zero-fill through the one schema.
    assert row["shed"] == row["rejected"] == row["deadline_exceeded"] == 0
    assert row["hit_rate"] == 0.0 and row["negative_hits"] == 0
    assert row["migrated_slots"] == 0
    assert row["goodput_kops"] == row["kops"]
