"""Property-based tests for the lower-bound machinery's invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.lowerbound.binball import optimal_adversary_cost, random_adversary_cost
from repro.lowerbound.charvec import from_counts
from repro.lowerbound.zones import decompose
from repro.tables.base import LayoutSnapshot

counts_strategy = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(1, 40),
    elements=st.integers(0, 20),
)


class TestAdversaryOptimality:
    @settings(max_examples=200, deadline=None)
    @given(counts=counts_strategy, t=st.integers(0, 400))
    def test_optimal_cost_is_exact_greedy_value(self, counts, t):
        """Cross-check the vectorised adversary against a direct greedy."""
        loads = sorted(int(c) for c in counts if c > 0)
        budget = t
        emptied = 0
        for load in loads:
            if budget >= load:
                budget -= load
                emptied += 1
            else:
                break
        assert optimal_adversary_cost(counts, t) == len(loads) - emptied

    @settings(max_examples=100, deadline=None)
    @given(counts=counts_strategy, t=st.integers(0, 100), seed=st.integers(0, 99))
    def test_optimal_leq_any_random_strategy(self, counts, t, seed):
        rng = np.random.default_rng(seed)
        opt = optimal_adversary_cost(counts, t)
        rand = random_adversary_cost(counts, t, rng)
        assert opt <= rand

    @settings(max_examples=100, deadline=None)
    @given(counts=counts_strategy, t=st.integers(0, 100))
    def test_monotone_in_t(self, counts, t):
        assert optimal_adversary_cost(counts, t + 1) <= optimal_adversary_cost(
            counts, t
        )


class TestCharacteristicVectorProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        counts=hnp.arrays(
            dtype=np.int64,
            shape=st.integers(1, 64),
            elements=st.integers(0, 1000),
        ).filter(lambda a: a.sum() > 0),
        rho=st.floats(1e-6, 1.0),
    )
    def test_lambda_bounds_and_area_count(self, counts, rho):
        v = from_counts(counts)
        lam = v.lambda_f(rho)
        assert 0.0 <= lam <= 1.0 + 1e-9
        # |D_f| ≤ λ_f / ρ (each bad index has mass > ρ).
        assert v.bad_index_area(rho).size <= lam / rho + 1e-9
        # Monotone: a larger threshold can only shrink the bad area.
        assert v.lambda_f(min(1.0, rho * 2)) <= lam + 1e-12


class TestZoneProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        mem=st.sets(st.integers(0, 50), max_size=10),
        blocks=st.dictionaries(
            st.integers(0, 10),
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            max_size=8,
        ),
        route=st.integers(0, 10),
    )
    def test_zones_partition_items(self, mem, blocks, route):
        snap = LayoutSnapshot(
            memory_items=frozenset(mem),
            blocks={bid: items for bid, items in blocks.items()},
            address=lambda k: (k + route) % 11,
        )
        z = decompose(snap)
        # Disjoint cover of all distinct items.
        assert not (z.memory & z.fast)
        assert not (z.memory & z.slow)
        assert not (z.fast & z.slow)
        assert z.memory | z.fast | z.slow == snap.memory_items | snap.disk_items()
        # The query bound is always within [0, 2].
        assert 0.0 <= z.query_cost_lower_bound() <= 2.0
