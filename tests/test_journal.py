"""The epoch write-ahead journal: format, commit protocol, torn tails.

The journal is the redo log of the durability subsystem; what matters
is that ``scan`` reconstructs exactly the committed prefix from any
byte-level state a crash can leave behind — torn records, missing
commit markers, flipped bits — and never anything more.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import EpochJournal


def _ops(n, seed=0):
    rng = np.random.default_rng(seed)
    kinds = rng.integers(0, 3, size=n).astype(np.uint8)
    keys = rng.integers(0, 2**61, size=n).astype(np.uint64)
    return kinds, keys


class TestRoundTrip:
    def test_append_commit_scan(self, tmp_path):
        path = tmp_path / "j.bin"
        kinds, keys = _ops(300)
        with EpochJournal(path, fsync=False) as j:
            for e, (lo, hi) in enumerate([(0, 100), (100, 250), (250, 300)]):
                j.append_epoch(e, lo, hi, kinds[lo:hi], keys[lo:hi])
                j.commit(e, lo, hi)
        scan = EpochJournal.scan(path)
        assert [r.epoch for r in scan.committed] == [0, 1, 2]
        assert scan.uncommitted_ops == 0
        assert scan.valid_bytes == scan.committed_bytes == path.stat().st_size
        for rec, (lo, hi) in zip(scan.committed, [(0, 100), (100, 250), (250, 300)]):
            assert (rec.start, rec.stop, rec.ops) == (lo, hi, hi - lo)
            np.testing.assert_array_equal(rec.kinds, kinds[lo:hi])
            np.testing.assert_array_equal(rec.keys, keys[lo:hi])

    def test_scan_missing_file(self, tmp_path):
        scan = EpochJournal.scan(tmp_path / "nope.bin")
        assert scan.records == [] and scan.committed == []
        assert scan.valid_bytes == scan.committed_bytes == 0

    def test_counters(self, tmp_path):
        kinds, keys = _ops(10)
        with EpochJournal(tmp_path / "j.bin", fsync=False) as j:
            j.append_epoch(0, 0, 10, kinds, keys)
            j.commit(0, 0, 10)
            assert j.appended_epochs == 1
            assert j.committed_epochs == 1
            assert j.bytes_written == (tmp_path / "j.bin").stat().st_size

    def test_length_mismatch_rejected(self, tmp_path):
        kinds, keys = _ops(10)
        with EpochJournal(tmp_path / "j.bin", fsync=False) as j:
            with pytest.raises(ValueError, match="do not match"):
                j.append_epoch(0, 0, 5, kinds, keys)


class TestTornTails:
    """A crash can stop the byte stream anywhere; scan must stop with it."""

    def _journal(self, path, epochs=3, n=60):
        kinds, keys = _ops(n)
        per = n // epochs
        with EpochJournal(path, fsync=False) as j:
            for e in range(epochs):
                lo, hi = e * per, (e + 1) * per
                j.append_epoch(e, lo, hi, kinds[lo:hi], keys[lo:hi])
                j.commit(e, lo, hi)
        return kinds, keys

    @pytest.mark.parametrize("cut", [1, 7, 25, 40])
    def test_truncated_tail_discarded(self, tmp_path, cut):
        path = tmp_path / "j.bin"
        self._journal(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - cut])
        scan = EpochJournal.scan(path)
        # Whatever the cut hit, the surviving committed prefix parses.
        assert len(scan.committed) >= 2
        assert scan.committed_bytes <= len(raw) - cut

    def test_missing_commit_marker_discards_epoch(self, tmp_path):
        path = tmp_path / "j.bin"
        kinds, keys = _ops(30)
        with EpochJournal(path, fsync=False) as j:
            j.append_epoch(0, 0, 20, kinds[:20], keys[:20])
            j.commit(0, 0, 20)
            j.append_epoch(1, 20, 30, kinds[20:], keys[20:])
            # crash before commit(1)
        scan = EpochJournal.scan(path)
        assert [r.epoch for r in scan.committed] == [0]
        assert scan.uncommitted_ops == 10
        assert scan.committed_bytes < scan.valid_bytes

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = tmp_path / "j.bin"
        self._journal(path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip a bit mid-journal
        path.write_bytes(bytes(raw))
        scan = EpochJournal.scan(path)
        assert len(scan.committed) < 3
        assert scan.valid_bytes < len(raw)

    def test_bad_magic_stops_scan(self, tmp_path):
        path = tmp_path / "j.bin"
        self._journal(path)
        with open(path, "ab") as fh:
            fh.write(b"GARBAGE-NOT-A-RECORD")
        scan = EpochJournal.scan(path)
        assert [r.epoch for r in scan.committed] == [0, 1, 2]

    def test_truncate_to_committed_prefix(self, tmp_path):
        path = tmp_path / "j.bin"
        kinds, keys = _ops(30)
        with EpochJournal(path, fsync=False) as j:
            j.append_epoch(0, 0, 20, kinds[:20], keys[:20])
            j.commit(0, 0, 20)
            j.append_epoch(1, 20, 30, kinds[20:], keys[20:])
        scan = EpochJournal.scan(path)
        EpochJournal.truncate(path, scan.committed_bytes)
        rescan = EpochJournal.scan(path)
        assert rescan.valid_bytes == rescan.committed_bytes == path.stat().st_size
        assert rescan.uncommitted_ops == 0
        # A resumed journal appends cleanly after the truncation point.
        with EpochJournal(path, fsync=False) as j:
            j.append_epoch(1, 20, 30, kinds[20:], keys[20:])
            j.commit(1, 20, 30)
        assert [r.epoch for r in EpochJournal.scan(path).committed] == [0, 1]
