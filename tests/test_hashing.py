"""Unit tests for the hash-function families and mixers."""

import numpy as np
import pytest

from repro.hashing.family import (
    CARTER_WEGMAN,
    IDEAL,
    MEMOISED_IDEAL,
    MULTIPLY_SHIFT,
    TABULATION,
    get_family,
)
from repro.hashing.ideal import IdealHash, MemoisedIdealHash
from repro.hashing.mixers import (
    is_probable_prime,
    mix_seed,
    mod_mersenne61,
    next_prime,
    pow_mod,
    splitmix64,
    splitmix64_array,
)
from repro.hashing.multiply_shift import MultiplyShiftHash
from repro.hashing.tabulation import TabulationHash
from repro.hashing.universal import CarterWegmanHash, PolynomialHash

U = 2**61 - 1
ALL_FAMILIES = [IDEAL, MEMOISED_IDEAL, MULTIPLY_SHIFT, CARTER_WEGMAN, TABULATION]


class TestMixers:
    def test_splitmix64_deterministic(self):
        assert splitmix64(42) == splitmix64(42)
        assert splitmix64(42) != splitmix64(43)

    def test_splitmix64_range(self):
        for x in [0, 1, 2**63, 2**64 - 1]:
            assert 0 <= splitmix64(x) < 2**64

    def test_splitmix64_array_matches_scalar(self):
        xs = np.array([0, 1, 7, 2**40], dtype=np.uint64)
        arr = splitmix64_array(xs)
        assert [int(v) for v in arr] == [splitmix64(int(x)) for x in xs]

    def test_mix_seed_varies_with_both_args(self):
        assert mix_seed(1, 2) != mix_seed(1, 3)
        assert mix_seed(1, 2) != mix_seed(2, 2)

    def test_mod_mersenne61(self):
        p = 2**61 - 1
        for x in [0, 1, p - 1, p, p + 1, 12345678901234567890, p * p - 1]:
            assert mod_mersenne61(x) == x % p

    def test_pow_mod(self):
        assert pow_mod(3, 20, 1000) == pow(3, 20, 1000)

    def test_is_probable_prime(self):
        primes = [2, 3, 5, 61, 2**61 - 1, 104729]
        composites = [1, 4, 9, 561, 2**61, 104730]
        assert all(is_probable_prime(p) for p in primes)
        assert not any(is_probable_prime(c) for c in composites)

    def test_next_prime(self):
        assert next_prime(14) == 17 or next_prime(14) in (17,) or is_probable_prime(next_prime(14))
        p = next_prime(1000)
        assert p >= 1000 and is_probable_prime(p)


class TestHashFunctionContract:
    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    def test_range_and_determinism(self, family):
        h = family.sample(U, seed=7)
        for key in [0, 1, U - 1, 123456789]:
            v = h.hash(key)
            assert 0 <= v < U
            assert v == h.hash(key)

    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    def test_seed_changes_function(self, family):
        h1 = family.sample(U, seed=1)
        h2 = family.sample(U, seed=2)
        keys = range(64)
        assert any(h1.hash(k) != h2.hash(k) for k in keys)

    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    def test_array_matches_scalar(self, family):
        h = family.sample(U, seed=3)
        keys = np.array([0, 5, 99, U - 1], dtype=np.uint64)
        arr = h.hash_array(keys)
        assert [int(v) for v in arr] == [h.hash(int(k)) for k in keys]

    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    def test_bucket_in_range(self, family):
        h = family.sample(U, seed=3)
        for r in [1, 7, 256]:
            for key in [0, 42, U - 1]:
                assert 0 <= h.bucket(key, r) < r

    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    def test_bucket_array_matches_scalar(self, family):
        h = family.sample(U, seed=3)
        keys = np.array([1, 2, 3, 999], dtype=np.uint64)
        arr = h.bucket_array(keys, 13)
        assert [int(v) for v in arr] == [h.bucket(int(k), 13) for k in keys]

    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    def test_low_bits(self, family):
        h = family.sample(U, seed=3)
        for key in [0, 17, 12345]:
            assert h.low_bits(key, 5) == h.hash(key) & 31

    def test_callable_protocol(self):
        h = MULTIPLY_SHIFT.sample(U, seed=1)
        assert h(5) == h.hash(5)

    def test_out_of_universe_key_rejected(self):
        h = MULTIPLY_SHIFT.sample(1000, seed=1)
        with pytest.raises(ValueError):
            h.hash(1000)
        with pytest.raises(ValueError):
            h.hash(-1)


class TestIdealHash:
    def test_memoised_consistency(self):
        h = MemoisedIdealHash(U, seed=5)
        first = [h.hash(k) for k in range(100)]
        second = [h.hash(k) for k in range(100)]
        assert first == second

    def test_memoised_depends_on_first_query_order(self):
        """Memoised draws are per-first-query, so identical seeds with the
        same query order reproduce, and the memo actually caches."""
        a = MemoisedIdealHash(U, seed=9)
        b = MemoisedIdealHash(U, seed=9)
        order = [5, 3, 8, 5, 3]
        assert [a.hash(k) for k in order] == [b.hash(k) for k in order]

    def test_ideal_is_stateless(self):
        """IdealHash gives the same value regardless of query order."""
        a = IdealHash(U, seed=9)
        b = IdealHash(U, seed=9)
        assert a.hash(5) == b.hash(5)
        b.hash(999)
        assert a.hash(5) == b.hash(5)


class TestDistributionQuality:
    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    def test_bucket_uniformity_chi2(self, family):
        """χ² of bucket counts should not catastrophically reject uniformity."""
        h = family.sample(U, seed=11)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, U, size=20_000, dtype=np.uint64)
        r = 64
        counts = np.bincount(h.bucket_array(keys, r), minlength=r)
        expected = len(keys) / r
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # dof = 63; mean 63, std ~11. Allow a generous 5-sigma band.
        assert chi2 < 63 + 5 * np.sqrt(2 * 63)

    def test_multiply_shift_no_low_bit_bias(self):
        """Sequential keys must not collide in low bits (the classic
        failure of plain modular hashing)."""
        h = MultiplyShiftHash(2**61 - 1, seed=2)
        buckets = [h.bucket(k, 64) for k in range(0, 6400, 2)]
        counts = np.bincount(buckets, minlength=64)
        assert counts.max() < 5 * counts.mean()


class TestFamilyRegistry:
    def test_get_family(self):
        assert get_family("multiply-shift").name == "multiply-shift"

    def test_get_family_unknown(self):
        with pytest.raises((KeyError, ValueError)):
            get_family("definitely-not-a-family")

    def test_description_words_positive(self):
        for fam in ALL_FAMILIES:
            h = fam.sample(U, seed=1)
            assert fam.description_words(h) >= 1


class TestSpecificFamilies:
    def test_carter_wegman_is_affine(self):
        """(ax+b) mod p: difference of hashes is linear in key difference."""
        h = CarterWegmanHash(2**61 - 1, seed=4)
        p = 2**61 - 1
        d1 = (h.hash(10) - h.hash(5)) % p
        d2 = (h.hash(25) - h.hash(20)) % p
        assert d1 == d2  # same key difference -> same hash difference

    def test_polynomial_hash_degree(self):
        h = PolynomialHash(2**61 - 1, seed=4, k=4)
        assert 0 <= h.hash(12345) < 2**61 - 1

    def test_tabulation_memory_words(self):
        h = TabulationHash(2**61 - 1, seed=1)
        assert h.memory_words() > 0
