"""ShardedDictionary: routing, aggregation, and snapshot disjointness.

The bit-identity contracts (scalar/batch, backends, N=1 transparency)
live in ``tests/test_batch_parity.py``; this file covers the router's
own semantics: keys land where the router says, per-shard namespaces
never collide, aggregate stats/snapshots are the shard sums, and the
lower-bound zone analyser consumes a sharded table unchanged.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.buffered import BufferedHashTable
from repro.em import make_context
from repro.em.errors import ConfigurationError
from repro.hashing.family import MULTIPLY_SHIFT
from repro.lowerbound.zones import decompose
from repro.tables import ChainedHashTable, ShardedDictionary, make_sharded, shard_view
from repro.tables.sharded import SHARD_ID_STRIDE
from repro.workloads.drivers import measure_table


def _buffered(ctx):
    return BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _chained(ctx):
    return ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=7))


def _keys(n=1500, seed=5):
    return random.Random(seed).sample(range(10**12), n)


@pytest.fixture
def sharded():
    ctx = make_context(b=32, m=512)
    table = ShardedDictionary(ctx, _buffered, shards=4)
    return ctx, table


class TestRouting:
    def test_every_item_lands_in_its_shard(self, sharded):
        _, table = sharded
        table.insert_batch(_keys())
        table.check_invariants()  # asserts per-item shard residency

    def test_scalar_and_batch_routing_agree(self, sharded):
        _, table = sharded
        keys = _keys(400)
        arr = np.asarray(keys, dtype=np.uint64)
        vec = table._shard_idx(arr).tolist()
        assert vec == [table.shard_of(k) for k in keys]

    def test_lookup_finds_all_and_only_inserted(self, sharded):
        _, table = sharded
        keys = _keys()
        table.insert_batch(keys)
        assert bool(table.lookup_batch(keys).all())
        misses = _keys(300, seed=99)
        expected = [k in set(keys) for k in misses]
        assert table.lookup_batch(misses).tolist() == expected

    def test_duplicates_are_idempotent(self, sharded):
        _, table = sharded
        keys = _keys(600)
        table.insert_batch(keys + keys[:200])
        assert len(table) == len(set(keys))

    def test_delete_routes_to_owning_shard(self):
        ctx = make_context(b=32, m=512)
        table = ShardedDictionary(ctx, _chained, shards=4)
        keys = _keys(800)
        table.insert_batch(keys)
        for k in keys[::7]:
            assert table.delete(k)
        assert not table.delete(keys[0])  # already gone
        assert len(table) == len(keys) - len(keys[::7])
        survivors = [k for k in keys if k not in set(keys[::7])]
        assert bool(table.lookup_batch(survivors).all())
        assert not table.lookup_batch(keys[::7]).any()

    def test_invalid_shard_count_rejected(self):
        ctx = make_context(b=32, m=512)
        with pytest.raises(ConfigurationError):
            ShardedDictionary(ctx, _buffered, shards=0)


class TestAggregation:
    def test_stats_sum_over_shards(self, sharded):
        _, table = sharded
        keys = _keys()
        table.insert_batch(keys)
        table.lookup_batch(keys[:500])
        agg = table.stats
        per_shard = [t.stats for t in table.shard_tables()]
        assert agg.inserts == sum(s.inserts for s in per_shard) == len(keys)
        assert agg.lookups == sum(s.lookups for s in per_shard) == 500
        assert agg.hits == 500
        assert agg.merges == sum(s.merges for s in per_shard)

    def test_size_and_shard_sizes(self, sharded):
        _, table = sharded
        keys = _keys()
        table.insert_batch(keys)
        assert sum(table.shard_sizes()) == len(table) == len(set(keys))
        # The router hash spreads keys roughly evenly over 4 shards.
        assert min(table.shard_sizes()) > len(keys) // 10

    def test_iostats_shared_ledger(self, sharded):
        ctx, table = sharded
        before = ctx.stats.total
        # Enough keys that every shard leaves its in-memory bootstrap.
        table.insert_batch(_keys(8000))
        assert ctx.stats.total > before
        for sub in table._contexts:
            assert sub.stats is ctx.stats

    def test_memory_high_water_aggregates(self, sharded):
        _, table = sharded
        table.insert_batch(_keys())
        assert table.memory_high_water() == sum(
            sub.memory.high_water for sub in table._contexts
        )
        assert table.memory_high_water() > 0

    def test_nonempty_disk_blocks_aggregates(self, sharded):
        _, table = sharded
        table.insert_batch(_keys(8000))
        assert table.nonempty_disk_blocks() == sum(
            sub.disk.nonempty_blocks() for sub in table._contexts
        )
        assert table.nonempty_disk_blocks() > 0


class TestSnapshot:
    def test_block_id_namespaces_disjoint(self, sharded):
        _, table = sharded
        table.insert_batch(_keys())
        per_shard_ids = [set(t.layout_snapshot().blocks) for t in table.shard_tables()]
        for i, ids in enumerate(per_shard_ids):
            lo = i * SHARD_ID_STRIDE
            assert all(lo <= bid < lo + SHARD_ID_STRIDE for bid in ids)
            for other in per_shard_ids[i + 1 :]:
                assert not (ids & other)

    def test_union_snapshot_and_address_routing(self, sharded):
        _, table = sharded
        keys = _keys()
        table.insert_batch(keys)
        snap = table.layout_snapshot()
        shard_snaps = [t.layout_snapshot() for t in table.shard_tables()]
        assert len(snap.blocks) == sum(len(s.blocks) for s in shard_snaps)
        assert snap.memory_items == frozenset().union(
            *[s.memory_items for s in shard_snaps]
        )
        # The aggregated address function equals the owning shard's.
        for k in keys[::97]:
            shard = table.shard_of(k)
            assert snap.address(k) == shard_snaps[shard].address(k)
        assert snap.item_count() == len(table)

    def test_zone_analyser_consumes_sharded_snapshot(self, sharded):
        _, table = sharded
        keys = _keys()
        table.insert_batch(keys)
        z = decompose(table.layout_snapshot())
        assert len(z.memory) + len(z.fast) + len(z.slow) == len(table)
        assert z.query_cost_lower_bound() >= 0


class TestShardView:
    def test_shard_view_strides_and_shares(self):
        parent = make_context(b=32, m=512, backend="arena")
        sub = shard_view(parent, 3)
        assert sub.stats is parent.stats
        assert sub.disk is not parent.disk
        assert sub.memory is not parent.memory
        assert sub.params == parent.params
        assert sub.disk.allocate() == 3 * SHARD_ID_STRIDE
        assert type(sub.disk.backend).name == "arena"

    def test_driver_integration(self):
        # measure_table with shards routes through the sharded wrapper
        # and reports aggregated load factor / memory peak.
        m = measure_table(
            lambda: make_context(b=32, m=512, backend="arena"),
            _buffered,
            8000,
            shards=4,
            seed=3,
        )
        assert m.n == 8000
        assert m.t_q >= 0
        assert m.load_factor > 0
        assert m.memory_high_water > 0

    def test_make_sharded_factory(self):
        factory = make_sharded(_buffered, 2, name="pair")
        ctx = make_context(b=32, m=512)
        table = factory(ctx)
        assert isinstance(table, ShardedDictionary)
        assert table.shards == 2
        assert table.name == "pair"
