"""Unit tests for the blocked chaining hash table."""

import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.lowerbound.zones import decompose
from repro.tables.chaining import ChainedHashTable


def make_table(b=32, m=512, buckets=16, max_load=0.8, seed=1):
    ctx = make_context(b=b, m=m)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=seed)
    return ctx, ChainedHashTable(ctx, h, buckets=buckets, max_load=max_load)


class TestBasicOperations:
    def test_insert_lookup(self, keys):
        _, t = make_table()
        t.insert_many(keys)
        assert len(t) == len(keys)
        assert all(t.lookup(k) for k in keys[::7])

    def test_absent_lookup(self, keys):
        _, t = make_table()
        t.insert_many(keys[:500])
        absent = set(range(10**13, 10**13 + 100))
        assert not any(t.lookup(k) for k in absent)

    def test_duplicate_insert_is_noop(self):
        _, t = make_table()
        t.insert(42)
        t.insert(42)
        assert len(t) == 1

    def test_delete(self, keys):
        _, t = make_table()
        t.insert_many(keys[:200])
        assert t.delete(keys[0])
        assert not t.lookup(keys[0])
        assert not t.delete(keys[0])
        assert len(t) == 199

    def test_contains_protocol(self):
        _, t = make_table()
        t.insert(7)
        assert 7 in t
        assert 8 not in t

    def test_invariants_after_churn(self, keys):
        _, t = make_table()
        t.insert_many(keys[:500])
        for k in keys[:250]:
            t.delete(k)
        t.insert_many(keys[500:700])
        t.check_invariants()
        assert len(t) == 450


class TestIOCosts:
    def test_insert_costs_about_one_io(self, keys):
        """Paper Section 1: insert = read target block + write back =
        1 I/O under footnote 2 (plus rare overflow/rebuild traffic)."""
        ctx, t = make_table(b=64, m=1024, buckets=64, max_load=None)
        before = ctx.stats.total
        t.insert_many(keys)
        amortized = (ctx.stats.total - before) / len(keys)
        assert 0.9 <= amortized <= 1.3

    def test_successful_lookup_about_one_io(self, keys):
        ctx, t = make_table(b=64, m=1024, buckets=64, max_load=None)
        t.insert_many(keys)
        before = ctx.stats.total
        for k in keys[::5]:
            assert t.lookup(k)
        avg = (ctx.stats.total - before) / len(keys[::5])
        assert 1.0 <= avg <= 1.2

    def test_fixed_capacity_mode_never_rebuilds(self, keys):
        _, t = make_table(buckets=4, max_load=None)
        t.insert_many(keys[:400])
        assert t.stats.rebuilds == 0
        assert t.bucket_count == 4

    def test_resizing_keeps_load_bounded(self, keys):
        _, t = make_table(buckets=2, max_load=0.8)
        t.insert_many(keys)
        assert t.load_factor() <= 0.85
        assert t.stats.rebuilds > 0


class TestLayoutSnapshot:
    def test_snapshot_covers_all_items(self, keys):
        _, t = make_table()
        t.insert_many(keys[:300])
        snap = t.layout_snapshot()
        assert snap.item_count() == 300
        assert snap.disk_items() == set(keys[:300])

    def test_snapshot_mostly_fast_zone(self, keys):
        """With load < 1 nearly every item is one I/O away."""
        _, t = make_table(b=64, buckets=64, max_load=None)
        t.insert_many(keys)
        z = decompose(t.layout_snapshot())
        assert len(z.fast) / len(keys) > 0.95
        assert z.query_cost_lower_bound() < 1.05

    def test_snapshot_address_matches_bucket(self, keys):
        _, t = make_table()
        t.insert_many(keys[:100])
        snap = t.layout_snapshot()
        for k in keys[:100]:
            addr = snap.address(k)
            assert addr is not None

    def test_snapshot_charges_no_io(self, keys):
        ctx, t = make_table()
        t.insert_many(keys[:100])
        before = ctx.stats.total
        t.layout_snapshot()
        assert ctx.stats.total == before


class TestMemoryAccounting:
    def test_memory_charged(self):
        ctx, t = make_table()
        assert ctx.memory.used >= t.memory_words()

    def test_memory_stays_within_budget(self, keys):
        ctx, t = make_table()
        t.insert_many(keys)
        assert ctx.memory.within_budget()


def test_overfull_bucket_chains():
    """Everything in one bucket: chains grow, lookups degrade gracefully."""
    ctx = make_context(b=8, m=512)
    h = MULTIPLY_SHIFT.sample(ctx.u, seed=1)
    t = ChainedHashTable(ctx, h, buckets=1, max_load=None)
    ks = list(range(100, 150))
    t.insert_many(ks)
    assert all(t.lookup(k) for k in ks)
    t.check_invariants()
