"""Arrival processes: seeded, nondecreasing, rate-faithful virtual time.

The open-loop experiments are only reproducible if the traffic side is
exactly deterministic, so every process is pinned on three axes: shape
(sorted, finite, positive length contract), determinism (same seed →
bit-identical stamps; different seed → different stamps), and long-run
mean rate (within a loose statistical tolerance at large n).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.em.errors import ConfigurationError
from repro.service import (
    ARRIVALS,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)

ALL = [
    PoissonArrivals(1000.0, seed=3),
    DiurnalArrivals(1000.0, seed=3, amplitude=0.6, period_s=2.0),
    BurstyArrivals(1000.0, seed=3, on_s=0.2, off_s=0.3),
]


@pytest.mark.parametrize("proc", ALL, ids=lambda p: p.name)
def test_times_are_sorted_finite_and_sized(proc):
    t = proc.times(5000)
    assert t.shape == (5000,) and t.dtype == np.float64
    assert bool(np.all(np.isfinite(t))) and bool(np.all(t >= 0))
    assert bool(np.all(np.diff(t) >= 0)), "arrival times must be nondecreasing"
    assert proc.times(0).shape == (0,)


@pytest.mark.parametrize("proc", ALL, ids=lambda p: p.name)
def test_same_seed_is_bit_identical(proc):
    assert proc.times(2000).tolist() == proc.times(2000).tolist()


@pytest.mark.parametrize("cls", [PoissonArrivals, DiurnalArrivals, BurstyArrivals])
def test_different_seeds_differ(cls):
    a = cls(500.0, seed=1).times(500)
    b = cls(500.0, seed=2).times(500)
    assert a.tolist() != b.tolist()


@pytest.mark.parametrize("proc", ALL, ids=lambda p: p.name)
def test_long_run_mean_rate(proc):
    n = 60000
    t = proc.times(n)
    observed = n / t[-1]
    assert observed == pytest.approx(proc.rate, rel=0.10), (
        f"{proc.name}: observed {observed:.1f} ops/s vs nominal {proc.rate}"
    )


def test_poisson_gaps_are_exponential_shaped():
    t = PoissonArrivals(1000.0, seed=9).times(50000)
    gaps = np.diff(t)
    # Memorylessness fingerprint: mean ≈ std ≈ 1/rate.
    assert gaps.mean() == pytest.approx(1e-3, rel=0.05)
    assert gaps.std() == pytest.approx(1e-3, rel=0.05)


def test_diurnal_rate_actually_oscillates():
    proc = DiurnalArrivals(2000.0, seed=5, amplitude=0.8, period_s=1.0)
    t = proc.times(40000)
    # Count arrivals in the peak vs trough quarter of each cycle.
    phase = np.mod(t, 1.0)
    peak = int(np.count_nonzero((phase >= 0.0) & (phase < 0.5)))
    trough = int(np.count_nonzero((phase >= 0.5) & (phase < 1.0)))
    assert peak > 1.5 * trough, (peak, trough)


def test_bursty_duty_cycle_and_silence():
    proc = BurstyArrivals(1000.0, seed=7, on_s=0.1, off_s=0.4)
    assert proc.duty == pytest.approx(0.2)
    t = proc.times(20000)
    gaps = np.diff(t)
    # OFF periods leave gaps far beyond anything a Poisson at the
    # instantaneous ON rate (5000/s) would produce.
    assert float(gaps.max()) > 10 * (1.0 / 5000.0)
    # But within bursts the arrivals are dense.
    assert float(np.median(gaps)) < 1.0 / 1000.0


def test_bursty_zero_off_degenerates_to_continuous():
    proc = BurstyArrivals(1000.0, seed=7, on_s=0.5, off_s=0.0)
    assert proc.duty == 1.0
    t = proc.times(5000)
    assert len(t) == 5000 and bool(np.all(np.diff(t) >= 0))


def test_registry_and_factory():
    assert sorted(ARRIVALS) == ["bursty", "diurnal", "poisson"]
    p = make_arrivals("poisson", 100.0, seed=4)
    assert isinstance(p, PoissonArrivals) and p.seed == 4
    d = make_arrivals("diurnal", 100.0, amplitude=0.2)
    assert isinstance(d, DiurnalArrivals) and d.amplitude == 0.2
    with pytest.raises(ConfigurationError, match="unknown arrival process"):
        make_arrivals("pareto", 100.0)


@pytest.mark.parametrize("cls", [PoissonArrivals, DiurnalArrivals, BurstyArrivals])
def test_rate_must_be_positive(cls):
    with pytest.raises(ConfigurationError, match="rate must be positive"):
        cls(0.0)
    with pytest.raises(ConfigurationError, match="rate must be positive"):
        cls(-5.0)


def test_parameter_validation():
    with pytest.raises(ConfigurationError, match="amplitude"):
        DiurnalArrivals(10.0, amplitude=1.0)
    with pytest.raises(ConfigurationError, match="amplitude"):
        DiurnalArrivals(10.0, amplitude=-0.1)
    with pytest.raises(ConfigurationError, match="period_s"):
        DiurnalArrivals(10.0, period_s=0.0)
    with pytest.raises(ConfigurationError, match="burst periods"):
        BurstyArrivals(10.0, on_s=0.0)
    with pytest.raises(ConfigurationError, match="burst periods"):
        BurstyArrivals(10.0, on_s=0.5, off_s=-0.1)
    with pytest.raises(ConfigurationError, match="op count"):
        PoissonArrivals(10.0).times(-1)
