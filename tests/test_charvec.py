"""Unit tests for characteristic vectors and the good/bad dichotomy."""

import numpy as np
import pytest

from repro.lowerbound.charvec import (
    CharacteristicVector,
    audit_family,
    exact_for_modular,
    from_counts,
    planted_bad_vector,
    sample_for_function,
)


class TestConstruction:
    def test_from_counts_normalises(self):
        v = from_counts([1, 1, 2])
        assert v.alphas.sum() == pytest.approx(1.0)
        assert v.d == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CharacteristicVector(alphas=np.array([0.5, -0.1, 0.6]), exact=True)

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            CharacteristicVector(alphas=np.array([0.5, 0.1]), exact=True)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            CharacteristicVector(alphas=np.ones((2, 2)) / 4, exact=True)

    def test_zero_counts_rejected(self):
        with pytest.raises(ValueError):
            from_counts([0, 0])


class TestLemma2Quantities:
    def test_uniform_vector_is_good(self):
        v = from_counts([10] * 100)
        rho = 2 / 100  # each α_i = 0.01 < ρ
        assert v.lambda_f(rho) == 0.0
        assert v.is_good(rho, phi=0.01)
        assert v.bad_index_area(rho).size == 0

    def test_planted_bad_vector_is_bad(self):
        v = planted_bad_vector(d=1000, hot_indices=5, hot_mass=0.5)
        rho = 1 / 1000
        assert v.lambda_f(rho) == pytest.approx(0.5)
        assert not v.is_good(rho, phi=0.1)
        assert set(v.bad_index_area(rho)) == set(range(5))

    def test_bad_index_area_count_bounded_by_lambda_over_rho(self):
        """|D_f| ≤ λ_f / ρ — each bad index holds mass > ρ."""
        v = planted_bad_vector(d=500, hot_indices=20, hot_mass=0.3)
        rho = 0.005
        lam = v.lambda_f(rho)
        assert v.bad_index_area(rho).size <= lam / rho + 1e-9

    def test_good_mass_complements_lambda(self):
        v = planted_bad_vector(d=100, hot_indices=2, hot_mass=0.4)
        rho = 0.05
        assert v.good_mass(rho) == pytest.approx(1 - v.lambda_f(rho))

    def test_max_good_bucket_prob(self):
        """p = ρ/(1−λ_f), the bin-ball per-bin probability."""
        v = planted_bad_vector(d=100, hot_indices=2, hot_mass=0.4)
        rho = 0.05
        assert v.max_good_bucket_prob(rho) == pytest.approx(rho / (1 - 0.4))

    def test_planted_validation(self):
        with pytest.raises(ValueError):
            planted_bad_vector(10, hot_indices=0, hot_mass=0.5)
        with pytest.raises(ValueError):
            planted_bad_vector(10, hot_indices=2, hot_mass=1.5)


class TestExactModular:
    def test_balanced_when_d_divides_u(self):
        v = exact_for_modular(u=1000, d=10)
        assert np.allclose(v.alphas, 0.1)

    def test_remainder_spread(self):
        v = exact_for_modular(u=103, d=10)
        # Three residues get 11/103, seven get 10/103.
        assert np.isclose(v.alphas.sum(), 1.0)
        assert (v.alphas > 10.5 / 103).sum() == 3

    def test_modular_is_good_for_any_reasonable_rho(self):
        v = exact_for_modular(u=10**6, d=1000)
        assert v.is_good(rho=2 / 1000, phi=0.01)


class TestSampledVectors:
    def test_sampled_close_to_exact(self):
        u, d = 2**40, 64
        v = sample_for_function(lambda k: k % d, u, d, samples=50_000)
        assert not v.exact
        assert np.abs(v.alphas - 1 / d).max() < 0.01

    def test_sampled_detects_planted_skew(self):
        u, d = 2**40, 64
        # A function sending half the universe to bucket 0.
        v = sample_for_function(
            lambda k: 0 if k % 2 == 0 else (k % d), u, d, samples=20_000
        )
        assert v.alphas[0] > 0.4

    def test_out_of_range_address_rejected(self):
        with pytest.raises(ValueError):
            sample_for_function(lambda k: 99, u=1000, d=10, samples=10)


class TestFamilyAudit:
    def test_audit_classification(self):
        good = from_counts([1] * 100)
        bad = planted_bad_vector(100, hot_indices=3, hot_mass=0.6)
        audit = audit_family([good, bad, good], rho=0.02, phi=0.1)
        assert audit.n_functions == 3
        assert audit.bad_fraction == pytest.approx(1 / 3)
        assert audit.worst() == pytest.approx(0.6)
