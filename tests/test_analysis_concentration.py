"""Unit tests for the concentration-bound toolkit."""

import math

import numpy as np
import pytest

from repro.analysis.concentration import (
    binomial_lower_tail_exact,
    chernoff_lower_tail,
    chernoff_upper_tail,
    dominated_bernoulli_lower_bound,
    empirical_dominates,
    lemma2_failure_probability,
    lemma2_per_function_tail,
    lemma3_failure_probability,
    lemma4_counting_bound,
    lemma4_failure_probability,
    log2_family_size,
    log2_union_bound,
    union_bound,
)


class TestChernoff:
    def test_lower_tail_dominates_exact_binomial(self):
        """Chernoff must upper-bound the true binomial tail."""
        n, p = 1000, 0.3
        mean = n * p
        for eps in (0.1, 0.2, 0.5):
            bound = chernoff_lower_tail(mean, eps)
            exact = binomial_lower_tail_exact(n, p, (1 - eps) * mean)
            assert exact <= bound + 1e-12

    def test_upper_tail_dominates_exact(self):
        from scipy import stats

        n, p = 1000, 0.3
        mean = n * p
        for eps in (0.1, 0.5, 1.0):
            bound = chernoff_upper_tail(mean, eps)
            exact = float(stats.binom.sf(math.floor((1 + eps) * mean), n, p))
            assert exact <= bound + 1e-12

    def test_tails_shrink_with_mean(self):
        assert chernoff_lower_tail(1000, 0.1) < chernoff_lower_tail(100, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 1.5)
        with pytest.raises(ValueError):
            chernoff_upper_tail(10, 0.0)
        with pytest.raises(ValueError):
            chernoff_lower_tail(-1, 0.5)


class TestUnionBounds:
    def test_basic(self):
        assert union_bound(10, 0.01) == pytest.approx(0.1)
        assert union_bound(1000, 0.01) == 1.0
        assert union_bound(math.inf, 0.0) == 0.0
        assert union_bound(math.inf, 0.5) == 1.0

    def test_log2_union_bound(self):
        # 2^10 events at e^-20 each: 10 + (-20/ln2) ≈ -18.9 → 2^-18.9.
        p = log2_union_bound(10.0, -20.0)
        assert p == pytest.approx(2 ** (10 - 20 / math.log(2)))

    def test_log2_union_bound_saturation(self):
        assert log2_union_bound(100.0, -1.0) == 1.0
        assert log2_union_bound(10.0, -5000.0) == 0.0

    def test_family_size(self):
        assert log2_family_size(64, 2**61 - 1) == pytest.approx(
            64 * math.log2(2**61 - 1)
        )


class TestPaperBounds:
    def test_lemma2_failure_vanishes_in_regime(self):
        """n ≫ m·b^{1+2c}: the union bound crushes the family size."""
        b, m, u = 64, 64, 2**61 - 1
        n = 10 * m * b**3  # c = 1 regime
        assert lemma2_failure_probability(1 / 4, n, m, u) < 1e-9

    def test_lemma2_failure_saturates_for_tiny_n(self):
        assert lemma2_failure_probability(0.01, 1000, 64, 2**61 - 1) == 1.0

    def test_per_function_tail_is_log(self):
        assert lemma2_per_function_tail(0.5, 1800) == pytest.approx(-25.0)

    def test_lemma3_matches_binball_module(self):
        from repro.lowerbound.binball import lemma3_failure_probability as lb3

        assert lemma3_failure_probability(500, 0.2) == pytest.approx(lb3(500, 0.2))

    def test_lemma4_counting_bound_small_for_big_s(self):
        assert lemma4_counting_bound(400, 0.01) < 1e-6
        assert lemma4_counting_bound(4, 0.4) <= 1.0

    def test_lemma4_tail_monotone(self):
        assert lemma4_failure_probability(200) < lemma4_failure_probability(50)


class TestDomination:
    def test_threshold_formula(self):
        assert dominated_bernoulli_lower_bound(100, 0.1, 0.2) == pytest.approx(
            0.8 * 0.9 * 100
        )

    def test_empirical_domination_obvious_case(self):
        rng = np.random.default_rng(0)
        hi = rng.normal(10, 1, size=2000)
        lo = rng.normal(5, 1, size=2000)
        assert empirical_dominates(hi, lo)
        assert not empirical_dominates(lo, hi)

    def test_empirical_domination_reflexive_with_slack(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, size=2000)
        assert empirical_dominates(x, x)

    def test_constant_samples(self):
        x = np.full(10, 3.0)
        assert empirical_dominates(x, x)
