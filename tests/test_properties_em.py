"""Property-based tests (hypothesis) for the EM substrate."""

from hypothesis import given, settings, strategies as st

from repro.em import Block, Disk, IOStats, MemoryBudget, PAPER_POLICY, STRICT_POLICY

words = st.integers(min_value=0, max_value=2**61 - 2)


class TestBlockProperties:
    @given(st.lists(words, max_size=16))
    def test_block_roundtrips_records(self, items):
        blk = Block(16, data=items)
        assert blk.records() == items
        assert len(blk) == len(items)

    @given(st.lists(words, min_size=1, max_size=16), st.data())
    def test_remove_then_absent_count(self, items, data):
        blk = Block(16, data=items)
        victim = data.draw(st.sampled_from(items))
        count_before = items.count(victim)
        blk.remove(victim)
        assert blk.records().count(victim) == count_before - 1

    @given(st.lists(words, max_size=16))
    def test_copy_equal_but_independent(self, items):
        blk = Block(16, data=items)
        dup = blk.copy()
        assert dup == blk
        if not dup.full:
            dup.append(0)
            assert len(blk) == len(items)


class TestDiskProperties:
    @given(st.lists(st.lists(words, max_size=8), min_size=1, max_size=12))
    def test_disk_is_a_faithful_store(self, contents):
        """Writing arbitrary block contents and reading them back is the
        identity, and I/O counts equal the operation counts (strict)."""
        disk = Disk(8, stats=IOStats(policy=STRICT_POLICY))
        ids = []
        for data in contents:
            bid = disk.allocate()
            disk.write(bid, Block(8, data=data))
            ids.append(bid)
        assert disk.stats.writes == len(contents)
        for bid, data in zip(ids, contents):
            assert disk.read(bid).records() == data
        assert disk.stats.reads == len(contents)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    def test_paper_policy_never_exceeds_strict(self, ops):
        """Total charged I/Os under footnote-2 combining ≤ strict total,
        and raw transfers agree."""
        paper = IOStats(policy=PAPER_POLICY)
        strict = IOStats(policy=STRICT_POLICY)
        for op in ops:
            block = op % 3
            if op < 3:
                paper.record_read(block)
                strict.record_read(block)
            else:
                paper.record_write(block)
                strict.record_write(block)
        assert paper.total <= strict.total
        assert paper.raw_total == strict.raw_total


class TestMemoryBudgetProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcd"), st.integers(0, 50)),
            max_size=30,
        )
    )
    def test_used_equals_sum_of_charges(self, charges):
        mb = MemoryBudget(10_000)
        totals: dict[str, int] = {}
        for owner, amount in charges:
            mb.set_charge(owner, amount)
            totals[owner] = amount
        assert mb.used == sum(totals.values())
        assert mb.high_water >= mb.used
