"""Unit tests for the Block container."""

import pytest

from repro.em import Block, BlockOverflowError


class TestConstruction:
    def test_empty_block(self):
        blk = Block(8)
        assert blk.empty
        assert not blk.full
        assert len(blk) == 0
        assert blk.capacity_records == 8

    def test_initial_data(self):
        blk = Block(8, data=[1, 2, 3])
        assert blk.records() == [1, 2, 3]
        assert blk.used_words == 3
        assert blk.free_records == 5

    def test_initial_data_overflow_rejected(self):
        with pytest.raises(BlockOverflowError):
            Block(2, data=[1, 2, 3])

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Block(0)

    def test_negative_record_words_rejected(self):
        with pytest.raises(ValueError):
            Block(8, record_words=0)

    def test_record_words_shrink_capacity(self):
        blk = Block(8, record_words=2)
        assert blk.capacity_records == 4
        blk.extend([10, 20, 30, 40])
        assert blk.full
        assert blk.used_words == 8

    def test_record_words_overflow_on_init(self):
        with pytest.raises(BlockOverflowError):
            Block(8, record_words=2, data=[1, 2, 3, 4, 5])

    def test_header_copied_not_aliased(self):
        header = {"depth": 3}
        blk = Block(8, header=header)
        header["depth"] = 9
        assert blk.header["depth"] == 3


class TestAppendRemove:
    def test_append_until_full(self):
        blk = Block(4)
        for i in range(4):
            blk.append(i)
        assert blk.full
        with pytest.raises(BlockOverflowError):
            blk.append(99)

    def test_extend_partial_then_overflow(self):
        blk = Block(4)
        blk.extend([1, 2, 3])
        with pytest.raises(BlockOverflowError):
            blk.extend([4, 5])
        # The in-capacity prefix was applied before the failure.
        assert 4 in blk

    def test_remove_present(self):
        blk = Block(4, data=[1, 2, 3])
        assert blk.remove(2)
        assert blk.records() == [1, 3]

    def test_remove_absent(self):
        blk = Block(4, data=[1, 2, 3])
        assert not blk.remove(9)
        assert len(blk) == 3

    def test_remove_only_one_occurrence(self):
        blk = Block(4, data=[5, 5, 5])
        blk.remove(5)
        assert blk.records() == [5, 5]

    def test_replace_contents(self):
        blk = Block(4, data=[1, 2])
        blk.replace_contents([7, 8, 9])
        assert blk.records() == [7, 8, 9]

    def test_replace_contents_overflow(self):
        blk = Block(2)
        with pytest.raises(BlockOverflowError):
            blk.replace_contents([1, 2, 3])

    def test_clear(self):
        blk = Block(4, data=[1, 2])
        blk.clear()
        assert blk.empty


class TestProtocols:
    def test_contains_iter_getitem(self):
        blk = Block(4, data=[10, 20, 30])
        assert 20 in blk
        assert 99 not in blk
        assert list(blk) == [10, 20, 30]
        assert blk[1] == 20

    def test_copy_is_deep_for_data(self):
        blk = Block(4, data=[1, 2])
        dup = blk.copy()
        dup.append(3)
        assert len(blk) == 2
        assert len(dup) == 3

    def test_copy_preserves_header(self):
        blk = Block(4, header={"leaf": True})
        dup = blk.copy()
        dup.header["leaf"] = False
        assert blk.header["leaf"] is True

    def test_equality(self):
        a = Block(4, data=[1, 2], header={"x": 1})
        b = Block(4, data=[1, 2], header={"x": 1})
        c = Block(4, data=[1, 2], header={"x": 2})
        assert a == b
        assert a != c
        assert a != "not a block"

    def test_records_returns_copy(self):
        blk = Block(4, data=[1])
        recs = blk.records()
        recs.append(999)
        assert len(blk) == 1
