"""Unit tests for ModelParams / EMContext."""

import math

import pytest

from repro.em import Block, ConfigurationError, EMContext, ModelParams, make_context
from repro.em.iostats import STRICT_POLICY


class TestModelParams:
    def test_word_bits(self):
        p = ModelParams(b=128, m=4096, u=2**61 - 1)
        assert p.word_bits == pytest.approx(math.log2(2**61 - 1))

    def test_memory_blocks(self):
        p = ModelParams(b=128, m=1000, u=2**20)
        assert p.memory_blocks == 7

    def test_block_not_too_small(self):
        assert ModelParams(b=128, m=64, u=2**61 - 1).block_not_too_small()
        assert not ModelParams(b=16, m=64, u=2**61 - 1).block_not_too_small()

    @pytest.mark.parametrize("bad", [dict(b=0), dict(m=0), dict(u=1)])
    def test_invalid_params(self, bad):
        kwargs = dict(b=8, m=8, u=100)
        kwargs.update(bad)
        with pytest.raises(ConfigurationError):
            ModelParams(**kwargs)

    def test_regime_ok_window(self):
        p = ModelParams(b=128, m=10, u=2**30)
        # Lower edge: n/m must exceed b^{1+2c} = 128² = 16384 at c=0.5.
        assert p.regime_ok(n=10 * 50_000, c=0.5)
        assert not p.regime_ok(n=10 * 1_000, c=0.5)
        # Upper edge: n/m must stay below 2^{b/log₂ b} ≈ 2^18.3 ≈ 323k.
        assert not p.regime_ok(n=10 * 1_000_000, c=0.5)


class TestEMContext:
    def test_make_context_defaults(self):
        ctx = make_context()
        assert ctx.b == 128
        assert ctx.m == 4096
        assert ctx.disk.b == 128
        assert ctx.memory.m == 4096

    def test_shared_stats_between_context_and_disk(self):
        ctx = make_context(b=8, m=64)
        bid = ctx.disk.allocate()
        ctx.disk.write(bid, Block(8, data=[1]))
        assert ctx.io_total() == 1
        ctx.reset_stats()
        assert ctx.io_total() == 0

    def test_policy_propagates(self):
        ctx = make_context(b=8, m=64, policy=STRICT_POLICY)
        bid = ctx.disk.allocate()
        ctx.disk.write(bid, Block(8, data=[1]))
        with ctx.disk.modify(bid) as blk:
            blk.append(2)
        # Strict: read + write both charged.
        assert ctx.io_total() == 3

    def test_validate_regime_small_block_rejected(self):
        ctx = make_context(b=16, m=64, u=2**61 - 1)
        with pytest.raises(ConfigurationError, match="b > log u"):
            ctx.validate_regime(n=10**6, c=0.5)

    def test_validate_regime_small_n_rejected(self):
        ctx = make_context(b=64, m=64, u=2**32)
        with pytest.raises(ConfigurationError, match="outside regime"):
            ctx.validate_regime(n=100, c=1.5)

    def test_load_factor_empty(self):
        ctx = make_context(b=8, m=64)
        assert ctx.load_factor(0) == 0.0

    def test_load_factor_counts_nonempty_blocks(self):
        ctx = make_context(b=8, m=64)
        ids = ctx.disk.allocate_many(4)
        for bid in ids[:2]:
            ctx.disk.write(bid, Block(8, data=[1, 2, 3, 4]))
        # 8 items stored; min blocks = 1; 2 blocks in actual use.
        assert ctx.load_factor(8) == pytest.approx(0.5)

    def test_hard_memory_flag(self):
        soft = EMContext(params=ModelParams(b=8, m=16, u=100), hard_memory=False)
        soft.memory.charge("x", 100)  # no raise
        assert soft.memory.high_water == 100
