"""Unit tests for mixed workloads, trace replay and persistence."""

import pytest

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.core.logmethod import LogMethodHashTable
from repro.tables.chaining import ChainedHashTable
from repro.workloads.generators import UniformKeys
from repro.workloads.trace import (
    DELETE,
    INSERT,
    LOOKUP_HIT,
    LOOKUP_MISS,
    MixedWorkload,
    Op,
    load_trace,
    replay,
    save_trace,
    uniform_mixed_trace,
)

U = 2**40


class TestOp:
    def test_valid_kinds(self):
        for kind in (INSERT, LOOKUP_HIT, LOOKUP_MISS, DELETE):
            Op(kind, 5)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Op("x", 5)

    def test_negative_key(self):
        with pytest.raises(ValueError):
            Op(INSERT, -1)


class TestMixedWorkload:
    def test_deterministic(self):
        a = MixedWorkload(UniformKeys(U, 1), seed=2).take(300)
        b = MixedWorkload(UniformKeys(U, 1), seed=2).take(300)
        assert a == b

    def test_semantic_consistency(self):
        """Hit-lookups target live keys; miss-lookups target fresh keys;
        deletes target live keys exactly once."""
        wl = MixedWorkload(UniformKeys(U, 3), seed=4)
        live: set[int] = set()
        for op in wl.take(2000):
            if op.kind == INSERT:
                assert op.key not in live
                live.add(op.key)
            elif op.kind == LOOKUP_HIT:
                assert op.key in live
            elif op.kind == LOOKUP_MISS:
                assert op.key not in live
            else:
                assert op.key in live
                live.remove(op.key)

    def test_mix_ratios_respected(self):
        wl = MixedWorkload(UniformKeys(U, 5), mix=(0.8, 0.2, 0.0, 0.0), seed=6)
        ops = wl.take(2000)
        kinds = [op.kind for op in ops]
        assert kinds.count(LOOKUP_MISS) == 0
        assert kinds.count(DELETE) == 0
        assert 0.7 < kinds.count(INSERT) / len(kinds) < 0.9

    def test_insert_only_mix(self):
        wl = MixedWorkload(UniformKeys(U, 7), mix=(1, 0, 0, 0), seed=8)
        assert all(op.kind == INSERT for op in wl.take(100))

    def test_invalid_mix(self):
        with pytest.raises(ValueError):
            MixedWorkload(UniformKeys(U, 1), mix=(0, 0, 0, 0))
        with pytest.raises(ValueError):
            MixedWorkload(UniformKeys(U, 1), mix=(1, 1, 1))


class TestReplay:
    def test_strict_replay_against_chaining(self):
        ctx = make_context(b=32, m=512, u=U)
        table = ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, 9))
        trace = MixedWorkload(UniformKeys(U, 10), seed=11).take(1500)
        report = replay(table, trace, strict=True)
        assert report.total_ops == 1500
        assert report.errors == 0
        assert report.amortized > 0
        rows = report.rows()
        assert any(r["op"] == "insert" for r in rows)

    def test_strict_replay_detects_lost_key(self):
        ctx = make_context(b=32, m=512, u=U)
        table = ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, 9))
        with pytest.raises(AssertionError):
            replay(table, [Op(LOOKUP_HIT, 12345)], strict=True)

    def test_lenient_replay_skips_unsupported_deletes(self):
        # Every built-in table deletes since the batch-triad PR, so the
        # lenient skip path needs a stub without a delete override.
        class NoDeleteTable(ChainedHashTable):
            def delete(self, key: int) -> bool:
                raise NotImplementedError("no deletion")

        ctx = make_context(b=32, m=512, u=U)
        table = NoDeleteTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, 9))
        trace = [Op(INSERT, 1), Op(DELETE, 1), Op(LOOKUP_HIT, 1)]
        report = replay(table, trace, strict=False)
        assert report.errors == 1
        assert report.total_ops == 3

    def test_replay_drives_logmethod_deletes(self):
        # The flip side: the log-method table's new delete path means a
        # delete round-trips through replay with no skips.
        ctx = make_context(b=32, m=512, u=U)
        table = LogMethodHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, 9))
        trace = [Op(INSERT, 1), Op(DELETE, 1), Op(LOOKUP_MISS, 1)]
        report = replay(table, trace, strict=True)
        assert report.errors == 0
        assert report.total_ops == 3
        assert len(table) == 0

    def test_per_kind_costs_populated(self):
        ctx = make_context(b=32, m=512, u=U)
        table = ChainedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, 9))
        trace = uniform_mixed_trace(U, 800, seed=12)
        report = replay(table, trace)
        assert report.per_kind[INSERT].count > 0
        assert report.per_kind[LOOKUP_HIT].count > 0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = uniform_mixed_trace(U, 200, seed=13)
        path = tmp_path / "ops.trace"
        written = save_trace(trace, path)
        assert written == 200
        assert load_trace(path) == trace

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "ops.trace"
        path.write_text("# header\n\ni 42\nq 42\n")
        assert load_trace(path) == [Op(INSERT, 42), Op(LOOKUP_HIT, 42)]

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "ops.trace"
        path.write_text("i 1 2 3\n")
        with pytest.raises(ValueError, match="malformed"):
            load_trace(path)
