"""Tradeoff explorer: draw your own Figure 1.

Sweeps the query exponent ``c`` (query target ``t_q = 1 + 1/b^c``),
measures the Theorem 2 table at each achievable point, overlays the
theoretical envelopes of Theorem 1, and prints the ASCII tradeoff
plane plus the data table.

Flags let you change the model geometry:

    python examples/tradeoff_explorer.py --b 128 --n 20000 --m 1024
"""

from __future__ import annotations

import argparse

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.analysis.tradeoff_curves import render_figure1, tradeoff_table
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams
from repro.core.tradeoff import figure1_curves
from repro.tables.chaining import ChainedHashTable
from repro.workloads.drivers import measure_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--b", type=int, default=64, help="words per block")
    ap.add_argument("--m", type=int, default=512, help="words of memory")
    ap.add_argument("--n", type=int, default=6000, help="keys to insert")
    ap.add_argument(
        "--exponents",
        type=float,
        nargs="+",
        default=[0.25, 0.5, 0.75],
        help="query exponents c (< 1) to measure the buffered table at",
    )
    args = ap.parse_args()

    def ctx_factory():
        return make_context(b=args.b, m=args.m, u=2**40)

    curves = figure1_curves(args.b, args.n, args.m)

    # The standard table anchors the c > 1 corner.
    std = measure_table(
        ctx_factory,
        lambda c: ChainedHashTable(
            c,
            MULTIPLY_SHIFT.sample(c.u, 7),
            buckets=max(16, 2 * args.n // args.b),
            max_load=None,
        ),
        args.n,
        seed=1,
    )
    curves.add_measured(2.0, std.t_q, std.t_u, "standard chaining")

    for c in args.exponents:
        m = measure_table(
            ctx_factory,
            lambda ctx, c=c: BufferedHashTable(
                ctx,
                MULTIPLY_SHIFT.sample(ctx.u, 7),
                params=BufferedParams.for_query_exponent(args.b, c),
            ),
            args.n,
            seed=1,
        )
        curves.add_measured(c, m.t_q, m.t_u, f"buffered c={c}")
        print(f"measured c={c}: t_q={m.t_q:.4f}, t_u={m.t_u:.4f}")

    print()
    print(render_figure1(curves))
    print()
    print(tradeoff_table(curves))


if __name__ == "__main__":
    main()
