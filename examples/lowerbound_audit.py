"""Auditing a hash table with the paper's lower-bound machinery.

The Section 2 proof works by decomposing any table's layout into the
memory / fast / slow zones and certifying, round by round, how many
distinct blocks the insertions *must* have touched.  The same
machinery doubles as a diagnostic for real structures: this example
audits three tables and prints

* the zone decomposition and the layout's query-cost floor,
* inequality (1) head-room (``m + δk − |S|``),
* the round-adversary certificate versus actual insertion cost.

A table claiming fast queries but showing a fat slow zone is lying;
a table with a fat slow zone claiming cheap inserts is the tradeoff
working as Theorem 1 predicts.

Run:  python examples/lowerbound_audit.py
"""

from __future__ import annotations

from repro.em import make_context
from repro.hashing.family import MEMOISED_IDEAL
from repro.analysis.tradeoff_curves import format_rows
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams, LowerBoundParams
from repro.core.logmethod import LogMethodHashTable
from repro.lowerbound.adversary import run_adversary
from repro.lowerbound.zones import decompose
from repro.tables.chaining import ChainedHashTable

# m must be far below n or every table degenerates to a memory buffer.
B, M, N, U = 32, 1100, 4000, 2**40
DELTA = 1 / B  # audit against the query claim t_q <= 1 + 1/b


def audit(name, factory):
    ctx = make_context(b=B, m=M, u=U)
    table = factory(ctx)
    params = LowerBoundParams(
        delta=DELTA, phi=0.1, rho=1 / 1024, s=max(100, N // 10), case=2
    )
    report = run_adversary(table, ctx, params, N, seed=21)
    z = decompose(table.layout_snapshot())
    return {
        "table": name,
        "memory": len(z.memory),
        "fast": len(z.fast),
        "slow": len(z.slow),
        "query_floor": round(z.query_cost_lower_bound(), 3),
        "ineq1_headroom": round(z.slow_budget(M, DELTA), 1),
        "certified t_u": round(report.certified_tu, 3),
        "actual t_u": round(report.measured_tu, 3),
    }


def main() -> None:
    rows = [
        audit(
            "chaining",
            lambda c: ChainedHashTable(
                c, MEMOISED_IDEAL.sample(c.u, 3), buckets=1024, max_load=None
            ),
        ),
        audit(
            "buffered (Thm2)",
            lambda c: BufferedHashTable(
                c, MEMOISED_IDEAL.sample(c.u, 3), params=BufferedParams(beta=8)
            ),
        ),
        audit(
            "log-method (Lem5)",
            lambda c: LogMethodHashTable(c, MEMOISED_IDEAL.sample(c.u, 3)),
        ),
    ]
    print(format_rows(rows))
    print()
    print("Reading the audit:")
    print(" * chaining: near-empty slow zone (queries ~1 I/O) and the round")
    print("   certificate pins its insert cost near 1 — Theorem 1 case 2.")
    print(" * buffered: a small slow zone (the <= 1/beta recent items),")
    print("   inequality (1) satisfied, and a small certificate — this table")
    print("   lives on the other side of the tradeoff.")
    print(" * log-method: a fat slow zone — it never claimed 1-I/O queries,")
    print("   so cheap inserts don't contradict anything.")


if __name__ == "__main__":
    main()
