"""Quickstart: a dynamic external hash table with o(1)-I/O inserts.

Builds the paper's Theorem 2 structure inside the simulated
external-memory model, inserts 10,000 keys, and prints the two numbers
the paper is about:

* ``t_u`` — amortized disk I/Os per insertion (≪ 1 thanks to buffering),
* ``t_q`` — average disk I/Os per successful lookup (≈ 1).

Run:  python examples/quickstart.py
"""

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams
from repro.workloads.drivers import measure_query_cost
from repro.workloads.generators import UniformKeys


def main() -> None:
    # The external-memory model: blocks of b words, m words of memory.
    ctx = make_context(b=128, m=1024)

    # Theorem 2's table with query exponent c = 0.5: the big table Ĥ is
    # refreshed β = b^c ≈ 11 times per doubling round, so at most a 1/β
    # fraction of items is ever outside it.
    params = BufferedParams.for_query_exponent(ctx.b, c=0.5)
    table = BufferedHashTable(ctx, MULTIPLY_SHIFT.sample(ctx.u, seed=1), params=params)

    keys = UniformKeys(ctx.u, seed=2).take(10_000)
    table.insert_many(keys)
    t_u = ctx.io_total() / len(keys)

    t_q = measure_query_cost(table, keys, sample_size=2000, seed=3).mean

    print(f"model:              b={ctx.b} words/block, m={ctx.m} words of memory")
    print(f"inserted:           {len(keys)} keys")
    print(f"beta (scans/round): {table.beta}")
    print(f"t_u  (I/Os/insert): {t_u:.4f}   <- o(1): buffering pays")
    print(f"t_q  (I/Os/lookup): {t_q:.4f}   <- within O(1/b^0.5) of one I/O")
    print(f"outside-H-hat:      {table.recent_fraction():.4f} (invariant: <= ~1/beta)")
    print(f"memory high water:  {ctx.memory.high_water}/{ctx.m} words")

    # For contrast: the paper proves (Theorem 1) that if you demand
    # t_q = 1 + O(1/b^c) with c > 1, then t_u >= 1 - o(1): no table can
    # do what you just saw while answering queries that fast.


if __name__ == "__main__":
    main()
