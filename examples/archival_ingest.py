"""Archival-data ingest: the paper's motivating workload.

Section 1 motivates the query-insertion tradeoff with "managing
archival data": streams with *many more insertions than lookups*, where
every record must nevertheless stay findable in about one disk access.

This example ingests a synthetic archival stream (bursts of new record
ids with occasional audit lookups) into four dictionaries and prints
the total I/O bill, split into ingest and audit:

* blocked chaining      — the standard hash table (1 I/O per insert),
* B-tree                — the ordered baseline (log_b n per op),
* LSM-tree              — how practice usually buffers (cheap ingest,
                          multi-probe audits),
* buffered hash table   — Theorem 2 (cheap ingest AND ~1-I/O audits).

Run:  python examples/archival_ingest.py
"""

from __future__ import annotations

from repro.em import make_context
from repro.hashing.family import MULTIPLY_SHIFT
from repro.analysis.tradeoff_curves import format_rows
from repro.baselines.btree import BTree
from repro.baselines.lsm import LSMTree
from repro.core.buffered import BufferedHashTable
from repro.core.config import BufferedParams
from repro.tables.chaining import ChainedHashTable
from repro.workloads.generators import UniformKeys

B, M, U = 64, 1024, 2**40
BURSTS = 40
BURST_SIZE = 200
AUDITS_PER_BURST = 5


def run(name, factory):
    ctx = make_context(b=B, m=M, u=U)
    table = factory(ctx)
    gen = UniformKeys(ctx.u, seed=11)
    archive: list[int] = []
    ingest_ios = 0
    audit_ios = 0
    audit_rng = UniformKeys(ctx.u, seed=99)._rng  # index sampler

    for _ in range(BURSTS):
        batch = gen.take(BURST_SIZE)
        before = ctx.stats.snapshot()
        table.insert_many(batch)
        ingest_ios += ctx.stats.delta_since(before).total
        archive.extend(batch)

        # A few compliance audits: look up old records.
        for _ in range(AUDITS_PER_BURST):
            victim = archive[int(audit_rng.integers(0, len(archive)))]
            before = ctx.stats.snapshot()
            assert table.lookup(victim), f"{name} lost record {victim}"
            audit_ios += ctx.stats.delta_since(before).total

    n = len(archive)
    audits = BURSTS * AUDITS_PER_BURST
    return {
        "structure": name,
        "records": n,
        "ingest I/Os": ingest_ios,
        "per-record": round(ingest_ios / n, 4),
        "audit I/Os": audit_ios,
        "per-audit": round(audit_ios / audits, 3),
    }


def main() -> None:
    rows = [
        run(
            "chaining-hash",
            lambda c: ChainedHashTable(
                c, MULTIPLY_SHIFT.sample(c.u, 5), buckets=256, max_load=None
            ),
        ),
        run("b-tree", lambda c: BTree(c)),
        run("lsm-tree", lambda c: LSMTree(c, gamma=4, memtable_items=128)),
        run(
            "buffered-hash",
            lambda c: BufferedHashTable(
                c,
                MULTIPLY_SHIFT.sample(c.u, 5),
                params=BufferedParams.for_query_exponent(B, 0.5),
            ),
        ),
    ]
    print(format_rows(rows))
    print()
    print("Shape to notice: the buffered hash table is the only row that is")
    print("cheap on BOTH columns — o(1) ingest like the LSM, ~1-I/O audits")
    print("like the classic hash table.  Theorem 1 says you cannot push the")
    print("audit column below 1 + O(1/b) without the ingest column snapping")
    print("back to ~1.")


if __name__ == "__main__":
    main()
